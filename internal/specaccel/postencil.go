package specaccel

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/omp"
)

// 503.postencil: an iterative 7-point 3D stencil (Jacobi relaxation) over an
// nx × ny × nz grid, ping-ponging between two buffers that stay resident on
// the device for the whole run.

func init() {
	register(&Workload{
		Name:  "503.postencil",
		Brief: "7-point 3D Jacobi stencil, device-resident ping-pong buffers",
		Run:   runPostencil,
	})
}

func stencilDims(scale int) (nx, ny, nz, iters int) {
	return 8 * scale, 8 * scale, 4, 4
}

func idx3(nx, ny int, i, j, k int) int { return (k*ny+j)*nx + i }

// initStencilGrid fills the boundary with 1s and the interior with 0s, the
// scheme the SPEC benchmark uses.
func initStencilGrid(c *omp.Context, g *omp.Buffer, nx, ny, nz int) {
	c.At("main.c", 110, "init")
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := 0.0
				if i == 0 || j == 0 || k == 0 || i == nx-1 || j == ny-1 || k == nz-1 {
					v = 1.0
				}
				c.StoreF64(g, idx3(nx, ny, i, j, k), v)
			}
		}
	}
}

// stencilKernel computes one Jacobi sweep src -> dst on the device.
func stencilKernel(k *omp.Context, src, dst *omp.Buffer, nx, ny, nz int) {
	k.At("kernels.c", 60, "cpu_stencil")
	k.ParallelFor(nz-2, func(k *omp.Context, kk int) {
		z := kk + 1
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				c := k.LoadF64(src, idx3(nx, ny, i, j, z))
				sum := k.LoadF64(src, idx3(nx, ny, i-1, j, z)) +
					k.LoadF64(src, idx3(nx, ny, i+1, j, z)) +
					k.LoadF64(src, idx3(nx, ny, i, j-1, z)) +
					k.LoadF64(src, idx3(nx, ny, i, j+1, z)) +
					k.LoadF64(src, idx3(nx, ny, i, j, z-1)) +
					k.LoadF64(src, idx3(nx, ny, i, j, z+1))
				k.StoreF64(dst, idx3(nx, ny, i, j, z), (sum+c)/7.0)
			}
		}
	})
}

func runPostencil(c *omp.Context, scale int) error {
	nx, ny, nz, iters := stencilDims(scale)
	n := nx * ny * nz
	a0 := c.AllocF64(n, "a0")
	a1 := c.AllocF64(n, "anext")
	initStencilGrid(c, a0, nx, ny, nz)
	initStencilGrid(c, a1, nx, ny, nz)

	src, dst := a0, a1
	c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(a0), omp.To(a1)}, Loc: omp.Loc("main.c", 127, "main")})
	for t := 0; t < iters; t++ {
		s, d := src, dst
		c.Target(omp.Opts{Loc: omp.Loc("main.c", 137, "main")}, func(k *omp.Context) {
			stencilKernel(k, s, d, nx, ny, nz)
		})
		src, dst = dst, src
	}
	// Correct version: synchronize the final result back before reading.
	c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: src}}, Loc: omp.Loc("main.c", 143, "main")})
	sum := 0.0
	c.At("main.c", 145, "main")
	for i := 0; i < n; i++ {
		sum += c.LoadF64(src, i)
	}
	c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Release(a0), omp.Release(a1)}, Loc: omp.Loc("main.c", 150, "main")})

	if math.IsNaN(sum) || sum <= 0 {
		return fmt.Errorf("postencil: invalid checksum %v", sum)
	}
	// Element-wise validation against a pure-Go reference computation of the
	// same Jacobi sweeps: any transfer or mapping slip shows up as a
	// mismatch, not just a perturbed checksum.
	ref := referenceStencil(nx, ny, nz, iters)
	for i := 0; i < n; i++ {
		got, err := c.Runtime().Host().LoadFloat64(src.Addr() + mem.Addr(i*8))
		if err != nil {
			return err
		}
		if math.Abs(got-ref[i]) > 1e-12 {
			return fmt.Errorf("postencil: element %d = %v, reference %v", i, got, ref[i])
		}
	}
	return nil
}

// referenceStencil computes the expected result with plain Go slices.
func referenceStencil(nx, ny, nz, iters int) []float64 {
	mk := func() []float64 {
		g := make([]float64, nx*ny*nz)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if i == 0 || j == 0 || k == 0 || i == nx-1 || j == ny-1 || k == nz-1 {
						g[idx3(nx, ny, i, j, k)] = 1.0
					}
				}
			}
		}
		return g
	}
	src, dst := mk(), mk()
	for t := 0; t < iters; t++ {
		for k := 1; k < nz-1; k++ {
			for j := 1; j < ny-1; j++ {
				for i := 1; i < nx-1; i++ {
					sum := src[idx3(nx, ny, i-1, j, k)] + src[idx3(nx, ny, i+1, j, k)] +
						src[idx3(nx, ny, i, j-1, k)] + src[idx3(nx, ny, i, j+1, k)] +
						src[idx3(nx, ny, i, j, k-1)] + src[idx3(nx, ny, i, j, k+1)] +
						src[idx3(nx, ny, i, j, k)]
					dst[idx3(nx, ny, i, j, k)] = sum / 7.0
				}
			}
		}
		src, dst = dst, src
	}
	return src
}

// RunPostencilBuggy reproduces the 503.postencil data mapping issue from the
// SPEC ACCEL changelog (paper Fig. 6): after launching the kernel the host
// swaps its buffer pointers, and the result is consumed without a
// `target update from`, so the host output function reads stale data —
// ARBALEST's Fig. 7 report fires at the read in main.c:145.
func RunPostencilBuggy(c *omp.Context, scale int) {
	nx, ny, nz, iters := stencilDims(scale)
	n := nx * ny * nz
	a0 := c.AllocF64(n, "a0")
	a1 := c.AllocF64(n, "anext")
	initStencilGrid(c, a0, nx, ny, nz)
	initStencilGrid(c, a1, nx, ny, nz)

	src, dst := a0, a1
	c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(a0), omp.To(a1)}, Loc: omp.Loc("main.c", 127, "main")})
	for t := 0; t < iters; t++ {
		s, d := src, dst
		c.Target(omp.Opts{Loc: omp.Loc("main.c", 137, "main")}, func(k *omp.Context) {
			stencilKernel(k, s, d, nx, ny, nz)
		})
		src, dst = dst, src // the pointer swap of Fig. 6 line 138
	}
	// BUG: no update-from; the output function reads the stale OV.
	c.At("main.c", 145, "main")
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += c.LoadF64(src, i)
	}
	_ = sum
	c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Release(a0), omp.Release(a1)}, Loc: omp.Loc("main.c", 150, "main")})
}
