package specaccel

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// 504.polbm: a lattice-Boltzmann fluid solver. This analogue runs a D2Q5
// collide-and-stream scheme over an nx × ny torus with two device-resident
// distribution-function arrays (5 directions per cell) in a ping-pong
// arrangement — the memory access pattern (gather from neighbours, scattered
// multi-component writes) that makes LBM a heavyweight instrumentation
// workload.

func init() {
	register(&Workload{
		Name:  "504.polbm",
		Brief: "D2Q5 lattice-Boltzmann collide-and-stream on a torus",
		Run:   runPolbm,
	})
}

const lbmQ = 5 // rest, +x, -x, +y, -y

var lbmWeights = [lbmQ]float64{1.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0}
var lbmCx = [lbmQ]int{0, 1, -1, 0, 0}
var lbmCy = [lbmQ]int{0, 0, 0, 1, -1}

func lbmIdx(nx int, x, y, q int) int { return (y*nx+x)*lbmQ + q }

func runPolbm(c *omp.Context, scale int) error {
	nx, ny := 8*scale, 8*scale
	iters := 4
	n := nx * ny * lbmQ
	f0 := c.AllocF64(n, "f0")
	f1 := c.AllocF64(n, "f1")

	// Initialize to equilibrium with a density bump in the centre.
	c.At("lbm.c", 30, "init")
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			rho := 1.0
			if x == nx/2 && y == ny/2 {
				rho = 2.0
			}
			for q := 0; q < lbmQ; q++ {
				c.StoreF64(f0, lbmIdx(nx, x, y, q), lbmWeights[q]*rho)
				c.StoreF64(f1, lbmIdx(nx, x, y, q), lbmWeights[q]*rho)
			}
		}
	}

	const omega = 1.2
	src, dst := f0, f1
	c.TargetEnterData(omp.Opts{Maps: []omp.Map{omp.To(f0), omp.To(f1)}, Loc: omp.Loc("lbm.c", 50, "main")})
	for t := 0; t < iters; t++ {
		s, d := src, dst
		c.Target(omp.Opts{Loc: omp.Loc("lbm.c", 55, "main")}, func(k *omp.Context) {
			k.At("lbm.c", 60, "collide_stream")
			k.ParallelFor(ny, func(k *omp.Context, y int) {
				for x := 0; x < nx; x++ {
					// Collide: relax toward local equilibrium.
					var rho float64
					for q := 0; q < lbmQ; q++ {
						rho += k.LoadF64(s, lbmIdx(nx, x, y, q))
					}
					for q := 0; q < lbmQ; q++ {
						cur := k.LoadF64(s, lbmIdx(nx, x, y, q))
						eq := lbmWeights[q] * rho
						post := cur + omega*(eq-cur)
						// Stream: push to the neighbour in direction q.
						tx := (x + lbmCx[q] + nx) % nx
						ty := (y + lbmCy[q] + ny) % ny
						k.StoreF64(d, lbmIdx(nx, tx, ty, q), post)
					}
				}
			})
		})
		src, dst = dst, src
	}
	c.TargetUpdate(omp.UpdateOpts{From: []omp.Map{{Buf: src}}, Loc: omp.Loc("lbm.c", 75, "main")})

	// Mass conservation check: total density must stay (nx*ny + 1).
	c.At("lbm.c", 80, "validate")
	var mass float64
	for i := 0; i < n; i++ {
		mass += c.LoadF64(src, i)
	}
	c.TargetExitData(omp.Opts{Maps: []omp.Map{omp.Release(f0), omp.Release(f1)}, Loc: omp.Loc("lbm.c", 85, "main")})

	want := float64(nx*ny) + 1.0
	if math.Abs(mass-want) > 1e-6*want {
		return fmt.Errorf("polbm: mass %v, want %v (conservation violated)", mass, want)
	}
	return nil
}
