package specaccel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/omp"
	"repro/internal/report"
	"repro/internal/tools"
)

func TestWorkloadRegistry(t *testing.T) {
	want := []string{"503.postencil", "504.polbm", "514.pomriq", "552.pep", "554.pcg"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d workloads, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("workload[%d] = %s, want %s", i, all[i].Name, name)
		}
		if ByName(name) == nil {
			t.Errorf("ByName(%s) = nil", name)
		}
	}
	if ByName("999.nope") != nil {
		t.Error("ByName of unknown workload returned non-nil")
	}
}

// TestWorkloadsValidateNative: every workload self-validates on an
// uninstrumented runtime.
func TestWorkloadsValidateNative(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rt := omp.NewRuntime(omp.Config{NumThreads: 4})
			if err := rt.Run(func(c *omp.Context) error { return w.Run(c, 1) }); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
		})
	}
}

// TestWorkloadsCleanUnderAllTools: the performance workloads are correct
// programs; no tool may report on them (otherwise Fig. 8 would be measuring
// report generation, and the paper's zero-false-positive claim would break).
func TestWorkloadsCleanUnderAllTools(t *testing.T) {
	for _, w := range All() {
		for _, tn := range PerfTools()[1:] {
			m, err := Run(w, tn, 1, 4)
			if err != nil {
				t.Fatalf("%s under %s: %v", w.Name, tn, err)
			}
			if m.Reports != 0 {
				a, _ := tools.New(tn)
				rt := omp.NewRuntime(omp.Config{NumThreads: 4}, a)
				_ = rt.Run(func(c *omp.Context) error { return w.Run(c, 1) })
				for _, r := range a.Sink().Reports() {
					t.Logf("%s:\n%s", tn, r)
				}
				t.Errorf("%s under %s: %d unexpected reports", w.Name, tn, m.Reports)
			}
		}
	}
}

// TestPostencilCaseStudy reproduces §VI-D: ARBALEST pinpoints the SPEC
// changelog's pointer-swap bug as a stale access at the output read
// (main.c:145, paper Fig. 7) while the four baselines stay silent.
func TestPostencilCaseStudy(t *testing.T) {
	runBuggy := func(tn string) tools.Analyzer {
		a, err := tools.New(tn)
		if err != nil {
			t.Fatal(err)
		}
		rt := omp.NewRuntime(omp.Config{NumThreads: 2}, a)
		_ = rt.Run(func(c *omp.Context) error {
			RunPostencilBuggy(c, 1)
			return nil
		})
		return a
	}

	arb := runBuggy("arbalest")
	if arb.Sink().CountKind(report.USD) == 0 {
		t.Fatal("Arbalest missed the postencil pointer-swap staleness")
	}
	var hit bool
	for _, r := range arb.Sink().Reports() {
		if r.Kind == report.USD && r.Loc.File == "main.c" && r.Loc.Line == 145 {
			hit = true
			if !strings.Contains(r.String(), "stale access") {
				t.Errorf("report text lacks the Fig. 7 anomaly name:\n%s", r)
			}
		}
	}
	if !hit {
		t.Error("no stale-access report at main.c:145 (the Fig. 7 location)")
	}

	for _, tn := range []string{"valgrind", "archer", "asan", "msan"} {
		a := runBuggy(tn)
		if a.Sink().Count() != 0 {
			for _, r := range a.Sink().Reports() {
				t.Logf("%s:\n%s", tn, r)
			}
			t.Errorf("%s unexpectedly reported on the postencil case study", tn)
		}
	}
}

// TestFixedPostencilClean: the corrected stencil (with the update-from) is
// clean under Arbalest.
func TestFixedPostencilClean(t *testing.T) {
	m, err := Run(ByName("503.postencil"), "arbalest", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reports != 0 {
		t.Errorf("%d reports on the fixed stencil", m.Reports)
	}
}

// TestRunFig8SmallScale: the full Fig. 8 sweep runs and produces sane
// slowdowns (instrumented >= ~native).
func TestRunFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	ms, err := RunFig8(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(All())*len(PerfTools()) {
		t.Fatalf("%d measurements, want %d", len(ms), len(All())*len(PerfTools()))
	}
	for _, m := range ms {
		if m.Tool == "native" {
			if m.Slowdown != 1.0 {
				t.Errorf("%s native slowdown = %v", m.Workload, m.Slowdown)
			}
			continue
		}
		if m.Slowdown <= 0 {
			t.Errorf("%s under %s: nonpositive slowdown %v", m.Workload, m.Tool, m.Slowdown)
		}
		if m.ToolPeakBytes == 0 {
			t.Errorf("%s under %s: no shadow accounting", m.Workload, m.Tool)
		}
	}
	var b8, b9 bytes.Buffer
	if err := WriteFig8(&b8, ms); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig9(&b9, ms); err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		if !strings.Contains(b8.String(), w.Name) || !strings.Contains(b9.String(), w.Name) {
			t.Errorf("figure output missing %s", w.Name)
		}
	}
	t.Logf("Fig 8 (time overhead):\n%s", b8.String())
	t.Logf("Fig 9 (space overhead):\n%s", b9.String())
}

// TestMeasurementAccounting: app memory accounting is nonzero and the fixed
// workload scales with the scale parameter.
func TestMeasurementAccounting(t *testing.T) {
	m1, err := Run(ByName("503.postencil"), "native", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(ByName("503.postencil"), "native", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m1.AppPeakBytes == 0 || m2.AppPeakBytes <= m1.AppPeakBytes {
		t.Errorf("app peak bytes do not scale: %d -> %d", m1.AppPeakBytes, m2.AppPeakBytes)
	}
}
