package specaccel

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// 514.pomriq: MRI non-Cartesian reconstruction (the "Q matrix" computation).
// For every voxel the kernel accumulates cos/sin phase contributions from
// every k-space sample — a compute-dense O(numX * numK) loop nest with
// read-only sample arrays and per-voxel output, the classic MRI-Q shape.

func init() {
	register(&Workload{
		Name:  "514.pomriq",
		Brief: "MRI-Q: phase accumulation over k-space samples per voxel",
		Run:   runPomriq,
	})
}

func runPomriq(c *omp.Context, scale int) error {
	numX := 32 * scale
	numK := 16 * scale

	kx := c.AllocF64(numK, "kx")
	ky := c.AllocF64(numK, "ky")
	kz := c.AllocF64(numK, "kz")
	phiMag := c.AllocF64(numK, "phiMag")
	x := c.AllocF64(numX, "x")
	y := c.AllocF64(numX, "y")
	z := c.AllocF64(numX, "z")
	qr := c.AllocF64(numX, "Qr")
	qi := c.AllocF64(numX, "Qi")

	c.At("mriq.c", 20, "init")
	for k := 0; k < numK; k++ {
		c.StoreF64(kx, k, math.Sin(float64(k)))
		c.StoreF64(ky, k, math.Cos(float64(k)*0.7))
		c.StoreF64(kz, k, math.Sin(float64(k)*1.3))
		c.StoreF64(phiMag, k, 1.0/float64(k+1))
	}
	for i := 0; i < numX; i++ {
		c.StoreF64(x, i, float64(i)*0.01)
		c.StoreF64(y, i, float64(i)*0.02)
		c.StoreF64(z, i, float64(i)*0.03)
	}

	c.Target(omp.Opts{
		Maps: []omp.Map{
			omp.To(kx), omp.To(ky), omp.To(kz), omp.To(phiMag),
			omp.To(x), omp.To(y), omp.To(z),
			omp.From(qr), omp.From(qi),
		},
		Loc: omp.Loc("mriq.c", 40, "main"),
	}, func(k *omp.Context) {
		k.At("mriq.c", 45, "ComputeQ")
		k.ParallelFor(numX, func(k *omp.Context, i int) {
			xi := k.LoadF64(x, i)
			yi := k.LoadF64(y, i)
			zi := k.LoadF64(z, i)
			var sumR, sumI float64
			for s := 0; s < numK; s++ {
				phase := 2 * math.Pi * (k.LoadF64(kx, s)*xi + k.LoadF64(ky, s)*yi + k.LoadF64(kz, s)*zi)
				mag := k.LoadF64(phiMag, s)
				sumR += mag * math.Cos(phase)
				sumI += mag * math.Sin(phase)
			}
			k.StoreF64(qr, i, sumR)
			k.StoreF64(qi, i, sumI)
		})
	})

	// Validation: voxel 0 has zero coordinates, so every phase is zero and
	// Qr[0] must equal the harmonic sum of magnitudes while Qi[0] is 0.
	c.At("mriq.c", 70, "validate")
	var wantR float64
	for s := 0; s < numK; s++ {
		wantR += 1.0 / float64(s+1)
	}
	gotR := c.LoadF64(qr, 0)
	gotI := c.LoadF64(qi, 0)
	if math.Abs(gotR-wantR) > 1e-9 || math.Abs(gotI) > 1e-9 {
		return fmt.Errorf("pomriq: Q[0] = (%v, %v), want (%v, 0)", gotR, gotI, wantR)
	}
	// And the full result must be finite.
	for i := 0; i < numX; i++ {
		if math.IsNaN(c.LoadF64(qr, i)) || math.IsNaN(c.LoadF64(qi, i)) {
			return fmt.Errorf("pomriq: NaN at voxel %d", i)
		}
	}
	return nil
}
