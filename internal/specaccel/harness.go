package specaccel

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/omp"
	"repro/internal/tools"
)

// PerfTools lists the measured configurations in the legend order of the
// paper's Fig. 8: the uninstrumented baseline plus the five tools.
func PerfTools() []string {
	return []string{"native", "arbalest", "archer", "valgrind", "asan", "msan"}
}

// Measurement is one (workload, tool) data point of Figs. 8 and 9.
type Measurement struct {
	Workload string
	Tool     string
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Slowdown is Elapsed relative to the native run of the same workload
	// (1.0 for native itself).
	Slowdown float64
	// AppPeakBytes is the application's peak simulated memory (host +
	// device spaces).
	AppPeakBytes uint64
	// ToolPeakBytes is the tool's peak shadow-state footprint (0 for
	// native).
	ToolPeakBytes uint64
	// Reports is the number of diagnostics produced (0 expected: the
	// performance workloads are correct programs).
	Reports int
}

// Run executes workload w once under the named tool configuration and
// returns the measurement (without Slowdown, which RunFig8 fills in).
func Run(w *Workload, toolName string, scale, threads int) (*Measurement, error) {
	var analyzer tools.Analyzer
	// 8 MiB per space comfortably fits every workload at the scales the
	// harness uses while keeping runtime construction cheap enough that
	// testing.B wrappers measure the workload, not the arena allocation.
	cfg := omp.Config{NumThreads: threads, HostMem: 8 << 20, DeviceMem: 8 << 20}
	var rt *omp.Runtime
	if toolName == "native" {
		rt = omp.NewRuntime(cfg)
	} else {
		a, err := tools.New(toolName)
		if err != nil {
			return nil, err
		}
		analyzer = a
		rt = omp.NewRuntime(cfg, a)
	}

	start := time.Now()
	err := rt.Run(func(c *omp.Context) error { return w.Run(c, scale) })
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("specaccel: %s under %s: %w", w.Name, toolName, err)
	}

	m := &Measurement{
		Workload:     w.Name,
		Tool:         toolName,
		Elapsed:      elapsed,
		AppPeakBytes: rt.Host().Stats().Peak + rt.Device(0).Space().Stats().Peak,
	}
	if analyzer != nil {
		m.ToolPeakBytes = analyzer.ShadowBytes()
		m.Reports = analyzer.Sink().Count()
	}
	return m, nil
}

// RunFig8 measures every workload under every tool configuration and
// computes slowdowns relative to native — the data of the paper's Fig. 8.
func RunFig8(scale, threads int) ([]*Measurement, error) {
	var out []*Measurement
	for _, w := range All() {
		native, err := Run(w, "native", scale, threads)
		if err != nil {
			return nil, err
		}
		native.Slowdown = 1.0
		out = append(out, native)
		for _, tn := range PerfTools()[1:] {
			m, err := Run(w, tn, scale, threads)
			if err != nil {
				return nil, err
			}
			m.Slowdown = float64(m.Elapsed) / float64(native.Elapsed)
			out = append(out, m)
		}
	}
	return out, nil
}

// WriteFig8 renders the time-overhead series (one row per workload, one
// column per tool, values are slowdown factors vs native).
func WriteFig8(w io.Writer, ms []*Measurement) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, tn := range PerfTools() {
		fmt.Fprintf(tw, "\t%s", tn)
	}
	fmt.Fprintln(tw)
	for _, wl := range All() {
		fmt.Fprint(tw, wl.Name)
		for _, tn := range PerfTools() {
			m := find(ms, wl.Name, tn)
			if m == nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.2fx (%s)", m.Slowdown, m.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteFig9 renders the space-overhead series (peak memory per workload and
// tool: application bytes plus tool shadow bytes).
func WriteFig9(w io.Writer, ms []*Measurement) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, tn := range PerfTools() {
		fmt.Fprintf(tw, "\t%s", tn)
	}
	fmt.Fprintln(tw)
	for _, wl := range All() {
		fmt.Fprint(tw, wl.Name)
		for _, tn := range PerfTools() {
			m := find(ms, wl.Name, tn)
			if m == nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%s", fmtBytes(m.AppPeakBytes+m.ToolPeakBytes))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func find(ms []*Measurement, workload, tool string) *Measurement {
	for _, m := range ms {
		if m.Workload == workload && m.Tool == tool {
			return m
		}
	}
	return nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// WriteCSV dumps the raw measurements (one row per workload/tool cell) for
// external plotting of Figs. 8 and 9.
func WriteCSV(w io.Writer, ms []*Measurement) error {
	if _, err := fmt.Fprintln(w, "workload,tool,elapsed_ns,slowdown,app_peak_bytes,tool_peak_bytes,reports"); err != nil {
		return err
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%d,%d,%d\n",
			m.Workload, m.Tool, m.Elapsed.Nanoseconds(), m.Slowdown,
			m.AppPeakBytes, m.ToolPeakBytes, m.Reports); err != nil {
			return err
		}
	}
	return nil
}
