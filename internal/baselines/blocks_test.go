package baselines

import (
	"testing"

	"repro/internal/ompt"
)

func TestBlockTablePrimitives(t *testing.T) {
	bt := newBlockTable()
	b := bt.add(0x1000, 64, "x", ompt.SourceLoc{}, true, false)
	if b == nil {
		t.Fatal("add failed")
	}
	if bt.find(0x1000+32) != b {
		t.Error("find missed")
	}
	if bt.find(0x1000+64) != nil {
		t.Error("find hit past end")
	}
	b.markDefined(0x1000+8, 16, true)
	if !b.allDefined(0x1000+8, 16) {
		t.Error("defined range reads undefined")
	}
	if b.allDefined(0x1000+8, 17) {
		t.Error("undefined tail reads defined")
	}
	if b.allDefined(0x1000, 8) {
		t.Error("untouched prefix reads defined")
	}
	b.markDefined(0x1000+8, 4, false)
	if b.allDefined(0x1000+8, 16) {
		t.Error("re-poisoned range reads defined")
	}
	if !bt.remove(0x1000) {
		t.Error("remove failed")
	}
	if bt.remove(0x1000) {
		t.Error("double remove succeeded")
	}
	if bt.peak() == 0 {
		t.Error("no peak accounting")
	}
}
