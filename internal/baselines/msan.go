package baselines

import (
	"fmt"

	"repro/internal/ompt"
	"repro/internal/report"
)

// MSan is the MemorySanitizer analogue: every allocation starts poisoned
// (undefined), stores unpoison the written bytes, and a load of any poisoned
// byte is a use of uninitialized memory. Two real-world limitations are
// modeled:
//
//   - Host<->device transfers mark their destination defined regardless of
//     the source's definedness: the runtime's transfer path (staging
//     buffers, driver copies) is invisible to MSan's compiler
//     instrumentation, so poison cannot propagate across it. This is why
//     real MSan missed DRACC_OMP_034's kernel-side UUM (paper §VI-C).
//   - There is no bounds checking, so buffer overflows escape.
type MSan struct {
	ompt.NopTool
	sink   *report.Sink
	blocks *blockTable
}

// NewMSan creates an MSan analogue reporting into sink (fresh when nil).
func NewMSan(sink *report.Sink) *MSan {
	if sink == nil {
		sink = report.NewSink()
	}
	return &MSan{sink: sink, blocks: newBlockTable()}
}

// Name implements ompt.Tool.
func (m *MSan) Name() string { return "MSan" }

// Sink returns the report sink.
func (m *MSan) Sink() *report.Sink { return m.sink }

// Reports returns the recorded reports.
func (m *MSan) Reports() []*report.Report { return m.sink.Reports() }

// ShadowBytes returns the peak tracked-state footprint. MSan's real shadow
// is 1:1 with application memory.
func (m *MSan) ShadowBytes() uint64 { return m.blocks.peak() }

// OnAlloc implements ompt.Tool: poison fresh host allocations.
func (m *MSan) OnAlloc(e ompt.AllocEvent) {
	if e.Free {
		m.blocks.remove(e.Addr)
		return
	}
	m.blocks.add(e.Addr, e.Bytes, e.Tag, e.Loc, true, false)
}

// OnDataOp implements ompt.Tool.
func (m *MSan) OnDataOp(e ompt.DataOpEvent) {
	switch e.Kind {
	case ompt.OpAlloc:
		// CV allocation = malloc on the virtual accelerator: poisoned.
		m.blocks.add(e.DevAddr, e.Bytes, e.Tag, e.Loc, true, false)
	case ompt.OpDelete:
		m.blocks.remove(e.DevAddr)
	case ompt.OpTransferToDevice:
		// Laundering: the transfer defines the destination.
		if b := m.blocks.find(e.DevAddr); b != nil {
			b.markDefined(e.DevAddr, e.Bytes, true)
		}
	case ompt.OpTransferFromDevice:
		if b := m.blocks.find(e.HostAddr); b != nil {
			b.markDefined(e.HostAddr, e.Bytes, true)
		}
	}
}

// OnAccess implements ompt.Tool: the poison check.
func (m *MSan) OnAccess(e ompt.AccessEvent) {
	b := m.blocks.find(e.Addr)
	if b == nil || !b.contains(e.Addr, e.Size) {
		// Out of bounds: MSan has no redzone concept and its shadow for
		// unrelated memory reads as defined — silently ignored.
		return
	}
	if e.Write {
		b.markDefined(e.Addr, e.Size, true)
		return
	}
	if b.allDefined(e.Addr, e.Size) {
		return
	}
	m.sink.AddAt(e.Clock, &report.Report{
		Tool:       m.Name(),
		Kind:       report.UUM,
		Var:        e.Tag,
		Addr:       e.Addr,
		Size:       e.Size,
		Write:      false,
		Device:     e.Device,
		Thread:     e.Thread,
		Loc:        e.Loc,
		Detail:     fmt.Sprintf("Load of %d bytes from %q touches poisoned (never stored) memory.", e.Size, e.Tag),
		AllocLoc:   b.loc,
		AllocBytes: b.bytes,
	})
}

var _ ompt.Tool = (*MSan)(nil)
