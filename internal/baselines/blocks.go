// Package baselines implements analogues of the four dynamic analysis tools
// the paper compares ARBALEST against (paper §VI-A): Valgrind's memcheck,
// AddressSanitizer (ASan), and MemorySanitizer (MSan). (The fourth, Archer,
// lives in internal/race.)
//
// Each analogue implements the real tool's detection algorithm — block
// bounds tracking, redzone-style out-of-bounds checks, byte-level
// definedness with poison-on-allocation — over the event stream its
// real-world instrumentation level could observe. The observation gaps are
// deliberate and documented in DESIGN.md: they are what makes these tools
// miss most data mapping issues in Table III. In particular:
//
//   - ASan tracks bounds but not definedness, so it catches the
//     buffer-overflow bugs and nothing else.
//   - MSan tracks definedness with poison-on-allocation, so it catches the
//     use-of-uninitialized-memory bugs; but host<->device transfers launder
//     definedness (the runtime's staging path is invisible to compiler
//     interceptors), and it has no bounds checking.
//   - Valgrind (memcheck) tracks bounds for all blocks, but its definedness
//     view of device memory is blinded by the device arena the runtime
//     pre-touches (what binary instrumentation sees below a real offloading
//     runtime), so it reports the overflow bugs but no UUM/USD.
//   - None of the three understands map semantics, so stale-data bugs — where
//     every byte is allocated and defined, just out of date — are invisible
//     to all of them; only ARBALEST's state machine catches those.
package baselines

import (
	"sync"

	"repro/internal/interval"
	"repro/internal/mem"
	"repro/internal/ompt"
)

// block is one tracked allocation.
type block struct {
	base  mem.Addr
	bytes uint64
	tag   string
	loc   ompt.SourceLoc
	// defMu guards def: concurrent device threads update definedness of
	// neighbouring bytes that share a bitmap word.
	defMu sync.Mutex
	// def is the byte-level definedness bitmap (1 bit per byte), present
	// only for tools that track definedness of this block.
	def []uint64
}

func (b *block) contains(addr mem.Addr, size uint64) bool {
	return addr >= b.base && addr+mem.Addr(size) <= b.base+mem.Addr(b.bytes)
}

// markDefined sets the definedness of [addr, addr+size) to v.
func (b *block) markDefined(addr mem.Addr, size uint64, v bool) {
	if b.def == nil {
		return
	}
	b.defMu.Lock()
	defer b.defMu.Unlock()
	off := uint64(addr - b.base)
	for i := uint64(0); i < size && off+i < b.bytes; i++ {
		w, bit := (off+i)/64, (off+i)%64
		if v {
			b.def[w] |= 1 << bit
		} else {
			b.def[w] &^= 1 << bit
		}
	}
}

// allDefined reports whether every byte of [addr, addr+size) is defined.
func (b *block) allDefined(addr mem.Addr, size uint64) bool {
	if b.def == nil {
		return true
	}
	b.defMu.Lock()
	defer b.defMu.Unlock()
	off := uint64(addr - b.base)
	for i := uint64(0); i < size && off+i < b.bytes; i++ {
		w, bit := (off+i)/64, (off+i)%64
		if b.def[w]&(1<<bit) == 0 {
			return false
		}
	}
	return true
}

// blockTable tracks live blocks across all address spaces (host and device
// addresses never collide, so one table suffices).
type blockTable struct {
	mu   sync.Mutex
	tree *interval.Tree[*block]

	peakBytes uint64
	curBytes  uint64
}

func newBlockTable() *blockTable {
	return &blockTable{tree: interval.New[*block]()}
}

// add registers a live block. withDef allocates a definedness bitmap
// initialized to initDefined.
func (t *blockTable) add(base mem.Addr, bytes uint64, tag string, loc ompt.SourceLoc, withDef, initDefined bool) *block {
	b := &block{base: base, bytes: bytes, tag: tag, loc: loc}
	if withDef {
		b.def = make([]uint64, (bytes+63)/64)
		if initDefined {
			for i := range b.def {
				b.def[i] = ^uint64(0)
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.tree.Insert(uint64(base), uint64(base)+bytes, b); err != nil {
		return nil
	}
	t.curBytes += bytes
	if withDef {
		t.curBytes += bytes / 8
	}
	if t.curBytes > t.peakBytes {
		t.peakBytes = t.curBytes
	}
	return b
}

// remove drops the block based at base and reports whether one existed.
func (t *blockTable) remove(base mem.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, b, ok := t.tree.Stab(uint64(base))
	if !ok || b.base != base {
		return false
	}
	if t.tree.Delete(uint64(base)) {
		t.curBytes -= b.bytes
		if b.def != nil {
			t.curBytes -= b.bytes / 8
		}
		return true
	}
	return false
}

// find returns the block containing addr, or nil.
func (t *blockTable) find(addr mem.Addr) *block {
	_, b, ok := t.tree.Stab(uint64(addr))
	if !ok {
		return nil
	}
	return b
}

// peak returns the high-water mark of tracked bytes (blocks + bitmaps), the
// tool's contribution to the space-overhead experiment.
func (t *blockTable) peak() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peakBytes
}
