package baselines

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/ompt"
	"repro/internal/report"
)

// Memcheck is the Valgrind memcheck analogue: binary-instrumentation-level
// block tracking plus byte definedness for host memory. Device memory is
// tracked for bounds (CV allocations are visible as mallocs when the host is
// the offload target) but its definedness is blinded: the runtime's device
// arena is pre-touched during pool initialization, so every device byte
// reads as defined. Consequently Memcheck reports out-of-bounds device
// accesses (the DRACC buffer overflows) but no UUM or USD — the paper's
// observed behaviour ("Valgrind did not precisely model the semantics of all
// OpenMP constructs due to the lack of OMPT", §VI-C).
type Memcheck struct {
	ompt.NopTool
	sink   *report.Sink
	blocks *blockTable
	// big serializes every instrumented access, modeling Valgrind's
	// defining performance property: dynamic binary instrumentation runs
	// the whole program on a single thread (the "big lock"), which is why
	// Valgrind's overhead dwarfs compile-time-instrumented tools on
	// multithreaded workloads (paper §VI-E).
	big sync.Mutex
	// dbiSink receives the result of the synthetic translation work so the
	// compiler cannot elide it.
	dbiSink uint64
}

// dbiCostIterations calibrates the per-access cost of dynamic binary
// translation. Valgrind instruments and interprets EVERY instruction — not
// just the memory accesses our event stream exposes — propagating V bits
// through arithmetic and control flow between accesses. An event-level
// analogue cannot observe those instructions, so their cost is charged here
// as a fixed amount of shadow-propagation work per memory access, calibrated
// so the analogue's slowdown sits in the tens-of-x band published for real
// memcheck (and reproduced in the paper's Fig. 8). See DESIGN.md §2.
const dbiCostIterations = 400

// dbiWork performs the synthetic V-bit propagation for the instructions
// surrounding one memory access. Caller holds v.big.
func (v *Memcheck) dbiWork() {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < dbiCostIterations; i++ {
		// xorshift stands in for per-instruction V-bit combination.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	v.dbiSink = x
}

// NewMemcheck creates a Valgrind analogue reporting into sink (fresh when nil).
func NewMemcheck(sink *report.Sink) *Memcheck {
	if sink == nil {
		sink = report.NewSink()
	}
	return &Memcheck{sink: sink, blocks: newBlockTable()}
}

// Name implements ompt.Tool.
func (v *Memcheck) Name() string { return "Valgrind" }

// Sink returns the report sink.
func (v *Memcheck) Sink() *report.Sink { return v.sink }

// Reports returns the recorded reports.
func (v *Memcheck) Reports() []*report.Report { return v.sink.Reports() }

// ShadowBytes returns the peak tracked-state footprint: memcheck keeps V
// bits (1 bit/bit) and A bits, dominated by the V-bit table.
func (v *Memcheck) ShadowBytes() uint64 { return v.blocks.peak() / 4 }

// OnAlloc implements ompt.Tool: host allocations get definedness tracking.
func (v *Memcheck) OnAlloc(e ompt.AllocEvent) {
	if e.Free {
		v.blocks.remove(e.Addr)
		return
	}
	v.blocks.add(e.Addr, e.Bytes, e.Tag, e.Loc, true, false)
}

// OnDataOp implements ompt.Tool: device blocks are bounds-tracked but
// definedness-blind (initDefined = true).
func (v *Memcheck) OnDataOp(e ompt.DataOpEvent) {
	switch e.Kind {
	case ompt.OpAlloc:
		v.blocks.add(e.DevAddr, e.Bytes, e.Tag, e.Loc, true, true)
	case ompt.OpDelete:
		v.blocks.remove(e.DevAddr)
	case ompt.OpTransferToDevice:
		// Copy into the pre-touched arena: stays defined. Memcheck only
		// propagates, never reports, on copies.
	case ompt.OpTransferFromDevice:
		// Copy from "defined" device memory defines the host range.
		if b := v.blocks.find(e.HostAddr); b != nil {
			b.markDefined(e.HostAddr, e.Bytes, true)
		}
	}
}

// OnAccess implements ompt.Tool: A-bit (addressability) check on every
// access, V-bit (validity) check on host loads.
func (v *Memcheck) OnAccess(e ompt.AccessEvent) {
	v.big.Lock()
	defer v.big.Unlock()
	v.dbiWork()
	b := v.blocks.find(e.Addr)
	if b == nil || !b.contains(e.Addr, e.Size) {
		detail := "Invalid access: address is not within any live heap block."
		if b != nil {
			detail = fmt.Sprintf("Invalid access %d bytes past a block of size %d.", uint64(e.Addr-b.base)-b.bytes+e.Size, b.bytes)
		}
		v.sink.AddAt(e.Clock, &report.Report{
			Tool:   v.Name(),
			Kind:   report.InvalidAccess,
			Var:    e.Tag,
			Addr:   e.Addr,
			Size:   e.Size,
			Write:  e.Write,
			Device: e.Device,
			Thread: e.Thread,
			Loc:    e.Loc,
			Detail: detail,
		})
		return
	}
	if e.Write {
		b.markDefined(e.Addr, e.Size, true)
		return
	}
	// V-bit check: only host memory has meaningful V bits here, and — as in
	// real memcheck — a use of uninitialized data is reported at the load.
	if mem.SpaceIndexOf(e.Addr) == -1 && !b.allDefined(e.Addr, e.Size) {
		v.sink.AddAt(e.Clock, &report.Report{
			Tool:       v.Name(),
			Kind:       report.UUM,
			Var:        e.Tag,
			Addr:       e.Addr,
			Size:       e.Size,
			Write:      false,
			Device:     e.Device,
			Thread:     e.Thread,
			Loc:        e.Loc,
			Detail:     "Use of uninitialised value.",
			AllocLoc:   b.loc,
			AllocBytes: b.bytes,
		})
	}
}

var _ ompt.Tool = (*Memcheck)(nil)
