package baselines

import (
	"fmt"

	"repro/internal/ompt"
	"repro/internal/report"
)

// ASan is the AddressSanitizer analogue: redzone-style bounds checking
// around every tracked allocation, no definedness tracking. It detects
// accesses outside any live block — including the data-mapping buffer
// overflows of DRACC — and use-after-free, but is blind to uninitialized
// and stale data.
type ASan struct {
	ompt.NopTool
	sink   *report.Sink
	blocks *blockTable
}

// NewASan creates an ASan analogue reporting into sink (fresh when nil).
func NewASan(sink *report.Sink) *ASan {
	if sink == nil {
		sink = report.NewSink()
	}
	return &ASan{sink: sink, blocks: newBlockTable()}
}

// Name implements ompt.Tool.
func (a *ASan) Name() string { return "ASan" }

// Sink returns the report sink.
func (a *ASan) Sink() *report.Sink { return a.sink }

// Reports returns the recorded reports.
func (a *ASan) Reports() []*report.Report { return a.sink.Reports() }

// ShadowBytes returns the peak tracked-state footprint.
func (a *ASan) ShadowBytes() uint64 {
	// ASan's shadow is 1 byte per 8 application bytes plus redzones; the
	// block table itself stands in for the redzone metadata.
	return a.blocks.peak() / 8 * 2
}

// OnAlloc implements ompt.Tool: track host allocations.
func (a *ASan) OnAlloc(e ompt.AllocEvent) {
	if e.Free {
		a.blocks.remove(e.Addr)
		return
	}
	a.blocks.add(e.Addr, e.Bytes, e.Tag, e.Loc, false, false)
}

// OnDataOp implements ompt.Tool: with the host as the offload target, CV
// allocations are plain mallocs ASan's interceptors see.
func (a *ASan) OnDataOp(e ompt.DataOpEvent) {
	switch e.Kind {
	case ompt.OpAlloc:
		a.blocks.add(e.DevAddr, e.Bytes, e.Tag, e.Loc, false, false)
	case ompt.OpDelete:
		a.blocks.remove(e.DevAddr)
	}
}

// OnAccess implements ompt.Tool: the redzone check.
func (a *ASan) OnAccess(e ompt.AccessEvent) {
	b := a.blocks.find(e.Addr)
	if b != nil && b.contains(e.Addr, e.Size) {
		return
	}
	detail := "Access is outside every live allocation (redzone hit)."
	if b != nil {
		detail = fmt.Sprintf("Access straddles the end of the %d-byte block %q.", b.bytes, b.tag)
	}
	a.sink.AddAt(e.Clock, &report.Report{
		Tool:   a.Name(),
		Kind:   report.InvalidAccess,
		Var:    e.Tag,
		Addr:   e.Addr,
		Size:   e.Size,
		Write:  e.Write,
		Device: e.Device,
		Thread: e.Thread,
		Loc:    e.Loc,
		Detail: detail,
	})
}

var _ ompt.Tool = (*ASan)(nil)
