package baselines_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/report"
	"repro/internal/tools"
)

// analyzers builds one of each baseline.
func analyzers() []tools.Analyzer {
	return []tools.Analyzer{baselines.NewMemcheck(nil), baselines.NewASan(nil), baselines.NewMSan(nil)}
}

// runAll executes body once per tool and returns the tools.
func runAll(t *testing.T, body func(c *omp.Context)) []tools.Analyzer {
	t.Helper()
	as := analyzers()
	for _, a := range as {
		rt := omp.NewRuntime(omp.Config{NumThreads: 1}, a)
		if err := rt.Run(func(c *omp.Context) error {
			body(c)
			return nil
		}); err != nil {
			t.Logf("%s: runtime fault: %v", a.Name(), err)
		}
	}
	return as
}

func byName(as []tools.Analyzer, name string) tools.Analyzer {
	for _, a := range as {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// uumScenario: map(alloc:) where `to` was needed; kernel reads garbage CV.
func uumScenario(c *omp.Context) {
	n := 8
	b := c.AllocI64(n, "b")
	for i := 0; i < n; i++ {
		c.StoreI64(b, i, int64(i))
	}
	c.Target(omp.Opts{Maps: []omp.Map{omp.Alloc(b)}, Loc: omp.Loc("uum.go", 5, "main")}, func(k *omp.Context) {
		for i := 0; i < n; i++ {
			_ = k.At("uum.go", 8, "kernel").LoadI64(b, i)
		}
	})
}

// boScenario: map half, access all.
func boScenario(c *omp.Context) {
	n := 8
	b := c.AllocI64(n, "b")
	for i := 0; i < n; i++ {
		c.StoreI64(b, i, int64(i))
	}
	c.Target(omp.Opts{Maps: []omp.Map{omp.To(b).Section(0, n/2)}, Loc: omp.Loc("bo.go", 5, "main")}, func(k *omp.Context) {
		for i := 0; i < n; i++ {
			_ = k.At("bo.go", 8, "kernel").LoadI64(b, i)
		}
	})
}

// usdScenario: map(to:) where tofrom was needed; host reads stale data.
func usdScenario(c *omp.Context) {
	b := c.AllocI64(1, "a")
	c.StoreI64(b, 0, 1)
	c.Target(omp.Opts{Maps: []omp.Map{omp.To(b)}}, func(k *omp.Context) {
		k.StoreI64(b, 0, 2)
	})
	_ = c.At("usd.go", 7, "main").LoadI64(b, 0)
}

// TestTable3ToolProfiles verifies each baseline's Table III row behaviour on
// the three bug classes.
func TestTable3ToolProfiles(t *testing.T) {
	cases := []struct {
		name     string
		scenario func(c *omp.Context)
		// which tool should report
		valgrind, asan, msan bool
	}{
		{"UUM", uumScenario, false, false, true},
		{"BO", boScenario, true, true, false},
		{"USD", usdScenario, false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as := runAll(t, tc.scenario)
			for name, want := range map[string]bool{
				"Valgrind": tc.valgrind, "ASan": tc.asan, "MSan": tc.msan,
			} {
				a := byName(as, name)
				got := a.Sink().Count() > 0
				if got != want {
					for _, r := range a.Sink().Reports() {
						t.Logf("%s report: %s", name, r)
					}
					t.Errorf("%s on %s: detected=%t, want %t", name, tc.name, got, want)
				}
			}
		})
	}
}

// TestCleanProgramNoFalsePositives: a correct to/from pipeline triggers no
// baseline reports.
func TestCleanProgramNoFalsePositives(t *testing.T) {
	as := runAll(t, func(c *omp.Context) {
		n := 32
		in := c.AllocI64(n, "in")
		out := c.AllocI64(n, "out")
		for i := 0; i < n; i++ {
			c.StoreI64(in, i, int64(i))
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(in), omp.From(out)}}, func(k *omp.Context) {
			for i := 0; i < n; i++ {
				k.StoreI64(out, i, k.LoadI64(in, i)*2)
			}
		})
		for i := 0; i < n; i++ {
			_ = c.LoadI64(out, i)
		}
	})
	for _, a := range as {
		if a.Sink().Count() != 0 {
			for _, r := range a.Sink().Reports() {
				t.Logf("%s report: %s", a.Name(), r)
			}
			t.Errorf("%s reported %d issues on a correct program", a.Name(), a.Sink().Count())
		}
	}
}

// TestMSanHostUUM: MSan also catches plain host-side uninitialized reads.
func TestMSanHostUUM(t *testing.T) {
	m := baselines.NewMSan(nil)
	rt := omp.NewRuntime(omp.Config{}, m)
	_ = rt.Run(func(c *omp.Context) error {
		b := c.AllocI64(4, "b")
		_ = c.LoadI64(b, 1)
		return nil
	})
	if m.Sink().CountKind(report.UUM) != 1 {
		t.Errorf("MSan host UUM reports = %d, want 1", m.Sink().CountKind(report.UUM))
	}
}

// TestValgrindHostUUM: memcheck's V bits catch host-side uninitialized
// reads too (its blindness is device-only).
func TestValgrindHostUUM(t *testing.T) {
	v := baselines.NewMemcheck(nil)
	rt := omp.NewRuntime(omp.Config{}, v)
	_ = rt.Run(func(c *omp.Context) error {
		b := c.AllocI64(4, "b")
		_ = c.LoadI64(b, 1)
		return nil
	})
	if v.Sink().CountKind(report.UUM) != 1 {
		t.Errorf("Valgrind host UUM reports = %d, want 1", v.Sink().CountKind(report.UUM))
	}
}

// TestASanUseAfterFree: ASan flags accesses to freed blocks.
func TestASanUseAfterFree(t *testing.T) {
	a := baselines.NewASan(nil)
	rt := omp.NewRuntime(omp.Config{}, a)
	_ = rt.Run(func(c *omp.Context) error {
		b := c.AllocI64(4, "b")
		c.StoreI64(b, 0, 1)
		c.Free(b)
		_ = c.LoadI64(b, 0) // use after free
		return nil
	})
	if a.Sink().CountKind(report.InvalidAccess) == 0 {
		t.Error("ASan missed use-after-free")
	}
}

// TestMSanLaunderingThroughTransfer: an uninitialized host value copied to
// the device and read there is NOT caught (the DRACC_OMP_034 modeling).
func TestMSanLaunderingThroughTransfer(t *testing.T) {
	m := baselines.NewMSan(nil)
	rt := omp.NewRuntime(omp.Config{}, m)
	_ = rt.Run(func(c *omp.Context) error {
		b := c.AllocI64(4, "b")
		// b never initialized; map(to:) copies garbage to the CV.
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(b)}}, func(k *omp.Context) {
			_ = k.LoadI64(b, 0)
		})
		return nil
	})
	if m.Sink().Count() != 0 {
		t.Errorf("MSan reported %d issues; transfer laundering should hide this UUM", m.Sink().Count())
	}
}

// TestToolsFactory covers the tools.New constructor.
func TestToolsFactory(t *testing.T) {
	for _, name := range append(tools.Names(), "arbalest-vsm") {
		a, err := tools.New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if a.Name() == "" || a.Sink() == nil {
			t.Errorf("New(%q) returned incomplete analyzer", name)
		}
	}
	if _, err := tools.New("bogus"); err == nil {
		t.Error("New(bogus) did not error")
	}
}

// TestArbalestFullCompositeForwarding: the composite forwards every event
// kind to both components and shares one sink.
func TestArbalestFullComposite(t *testing.T) {
	af := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 1}, af)
	_ = rt.Run(func(c *omp.Context) error {
		uumScenario(c)
		return nil
	})
	if af.Sink().CountKind(report.UUM) == 0 {
		t.Error("composite missed the UUM")
	}
	if af.VSM().Sink() != af.Sink() || af.Race().Sink() != af.Sink() {
		t.Error("components do not share the composite sink")
	}
	if af.ShadowBytes() == 0 {
		t.Error("composite shadow accounting empty")
	}
	// The composite is usable as a plain ompt.Tool.
	var _ ompt.Tool = af
}
