// Package ompt defines the tool interface through which analysis tools
// observe the simulated offloading runtime.
//
// It plays the role OMPT plays for the paper's ARBALEST: the runtime emits
// callbacks for device initialization, target regions, data-mapping
// operations (allocation, deletion, host<->device transfers), kernel
// submission, task synchronization, and — standing in for compile-time
// instrumentation — every application memory access. The event vocabulary
// deliberately includes what the paper reported missing from stock OMPT:
// implicit global-variable mappings and the synchronous/asynchronous flavour
// of each target region.
package ompt

import (
	"repro/internal/mem"
)

// DeviceID identifies a device. HostDevice denotes the host itself.
type DeviceID int

// HostDevice is the DeviceID of the host.
const HostDevice DeviceID = -1

// TaskID identifies a task (the initial/host task, explicit tasks, and target
// tasks all get IDs from the same sequence).
type TaskID uint64

// ThreadID identifies an execution thread in the simulation. Host threads and
// device threads share the sequence.
type ThreadID uint32

// TargetKind distinguishes the device directives (paper §II-B).
type TargetKind uint8

// The device directive kinds.
const (
	KindTarget TargetKind = iota
	KindTargetData
	KindTargetEnterData
	KindTargetExitData
	KindTargetUpdate
)

func (k TargetKind) String() string {
	switch k {
	case KindTarget:
		return "target"
	case KindTargetData:
		return "target data"
	case KindTargetEnterData:
		return "target enter data"
	case KindTargetExitData:
		return "target exit data"
	case KindTargetUpdate:
		return "target update"
	}
	return "unknown"
}

// DataOpKind distinguishes data-mapping operations.
type DataOpKind uint8

// The data-mapping operation kinds.
const (
	// OpAlloc allocates a corresponding variable (CV) on a device.
	OpAlloc DataOpKind = iota
	// OpDelete frees a CV.
	OpDelete
	// OpTransferToDevice copies OV -> CV (the paper's update_target).
	OpTransferToDevice
	// OpTransferFromDevice copies CV -> OV (the paper's update_host).
	OpTransferFromDevice
)

func (k DataOpKind) String() string {
	switch k {
	case OpAlloc:
		return "alloc"
	case OpDelete:
		return "delete"
	case OpTransferToDevice:
		return "to-device"
	case OpTransferFromDevice:
		return "from-device"
	}
	return "unknown"
}

// SyncKind distinguishes synchronization events used to build happens-before.
type SyncKind uint8

// The synchronization event kinds.
const (
	// SyncTaskCreate: a task created a child task (Child is set).
	SyncTaskCreate SyncKind = iota
	// SyncTaskBegin: a task started executing on a thread.
	SyncTaskBegin
	// SyncTaskEnd: a task finished.
	SyncTaskEnd
	// SyncTaskWait: a task waited for all its outstanding children.
	SyncTaskWait
	// SyncDependence: an ordering edge Child -> Task induced by depend clauses.
	SyncDependence
)

func (k SyncKind) String() string {
	switch k {
	case SyncTaskCreate:
		return "task-create"
	case SyncTaskBegin:
		return "task-begin"
	case SyncTaskEnd:
		return "task-end"
	case SyncTaskWait:
		return "task-wait"
	case SyncDependence:
		return "dependence"
	}
	return "unknown"
}

// DeviceInitEvent reports a device becoming available.
type DeviceInitEvent struct {
	Device   DeviceID
	Name     string
	Unified  bool // device shares a unified memory space with the host
	NumSpace *mem.Space
}

// TargetEvent reports entry to or exit from a device directive.
type TargetEvent struct {
	Kind   TargetKind
	Device DeviceID
	Task   TaskID // the encountering (host-side) task
	Target TaskID // the target task created for the region (KindTarget only)
	Async  bool   // nowait was present
	Loc    SourceLoc
}

// MapEntry describes one mapped variable inside a DataOpEvent or TargetEvent.
type MapEntry struct {
	Tag      string
	HostAddr mem.Addr
	Bytes    uint64
}

// DataOpEvent reports one data-mapping operation.
type DataOpEvent struct {
	Kind     DataOpKind
	Device   DeviceID
	Task     TaskID
	Tag      string   // mapped variable label
	HostAddr mem.Addr // OV base (zero for pure device ops with no OV)
	DevAddr  mem.Addr // CV base
	Bytes    uint64
	Implicit bool // implicit mapping (e.g. global variable at device init)
	Loc      SourceLoc
	// Clock, when nonzero, is the replay-assigned scalar clock of this
	// operation (see AccessEvent.Clock). Tools that emit reports from data
	// operations use it to order those reports against access-driven ones.
	// Zero during online execution; never serialized.
	Clock uint64 `json:"-"`
}

// AccessEvent reports one application memory access, standing in for the
// compiler instrumentation callbacks.
type AccessEvent struct {
	Addr   mem.Addr
	Size   uint64
	Write  bool
	Device DeviceID // HostDevice for host code, else the executing device
	Task   TaskID
	Thread ThreadID
	// Base is the base address of the buffer the access was issued
	// against (for device accesses, the CV base the compiler would have
	// materialized). ARBALEST's buffer-overflow extension compares Addr's
	// interval with Base's interval (paper §IV-D).
	Base mem.Addr
	// Tag names the accessed variable for bug reports.
	Tag string
	Loc SourceLoc
	// Clock, when nonzero, is a replay-assigned scalar clock for this
	// access (derived from the trace sequence number). Tools that stamp
	// access metadata into shadow state use it instead of a live
	// per-thread counter, so parallel and sequential replays of the same
	// trace record identical metadata regardless of dispatch order. It is
	// zero during online (non-replay) execution and is never serialized.
	Clock uint64 `json:"-"`
}

// SyncEvent reports a synchronization point.
type SyncEvent struct {
	Kind   SyncKind
	Task   TaskID
	Child  TaskID // SyncTaskCreate, SyncTaskEnd, SyncDependence
	Thread ThreadID
	Loc    SourceLoc
}

// AllocEvent reports a host allocation or deallocation (malloc/free level).
type AllocEvent struct {
	Free  bool
	Addr  mem.Addr
	Bytes uint64
	Tag   string
	Task  TaskID
	Loc   SourceLoc
}

// SourceLoc is a synthetic source location attached to events, standing in
// for the PC/stack information LLVM instrumentation provides.
type SourceLoc struct {
	File string
	Line int
	Func string
}

// IsZero reports whether the location is unset.
func (l SourceLoc) IsZero() bool { return l.File == "" && l.Line == 0 && l.Func == "" }

func (l SourceLoc) String() string {
	if l.IsZero() {
		return "<unknown>"
	}
	if l.Func == "" {
		return locFileLine(l)
	}
	return locFileLine(l) + " in " + l.Func
}

func locFileLine(l SourceLoc) string {
	if l.Line == 0 {
		return l.File
	}
	return l.File + ":" + itoa(l.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Tool is the interface analysis tools implement to observe the runtime.
// Embed NopTool to get no-op defaults.
type Tool interface {
	// Name returns the tool's short name for reports and tables.
	Name() string
	// OnDeviceInit fires when a device is registered, before any mapping.
	OnDeviceInit(DeviceInitEvent)
	// OnTargetBegin/OnTargetEnd bracket each device directive.
	OnTargetBegin(TargetEvent)
	OnTargetEnd(TargetEvent)
	// OnDataOp fires for every mapping operation.
	OnDataOp(DataOpEvent)
	// OnAccess fires for every instrumented application access.
	OnAccess(AccessEvent)
	// OnSync fires at task synchronization points.
	OnSync(SyncEvent)
	// OnAlloc fires for host allocations and frees.
	OnAlloc(AllocEvent)
}

// NopTool provides no-op implementations of every Tool callback.
type NopTool struct{}

// Name implements Tool.
func (NopTool) Name() string { return "nop" }

// OnDeviceInit implements Tool.
func (NopTool) OnDeviceInit(DeviceInitEvent) {}

// OnTargetBegin implements Tool.
func (NopTool) OnTargetBegin(TargetEvent) {}

// OnTargetEnd implements Tool.
func (NopTool) OnTargetEnd(TargetEvent) {}

// OnDataOp implements Tool.
func (NopTool) OnDataOp(DataOpEvent) {}

// OnAccess implements Tool.
func (NopTool) OnAccess(AccessEvent) {}

// OnSync implements Tool.
func (NopTool) OnSync(SyncEvent) {}

// OnAlloc implements Tool.
func (NopTool) OnAlloc(AllocEvent) {}

var _ Tool = NopTool{}

// Dispatcher fans events out to registered tools. The zero value is usable.
type Dispatcher struct {
	tools []Tool
}

// Register adds a tool. Not safe for concurrent use with event dispatch;
// register tools before the program starts.
func (d *Dispatcher) Register(t Tool) { d.tools = append(d.tools, t) }

// Tools returns the registered tools.
func (d *Dispatcher) Tools() []Tool { return d.tools }

// Empty reports whether no tool is registered (lets the runtime skip
// instrumentation entirely for native runs).
func (d *Dispatcher) Empty() bool { return len(d.tools) == 0 }

// DeviceInit dispatches a DeviceInitEvent.
func (d *Dispatcher) DeviceInit(e DeviceInitEvent) {
	for _, t := range d.tools {
		t.OnDeviceInit(e)
	}
}

// TargetBegin dispatches entry to a device directive.
func (d *Dispatcher) TargetBegin(e TargetEvent) {
	for _, t := range d.tools {
		t.OnTargetBegin(e)
	}
}

// TargetEnd dispatches exit from a device directive.
func (d *Dispatcher) TargetEnd(e TargetEvent) {
	for _, t := range d.tools {
		t.OnTargetEnd(e)
	}
}

// DataOp dispatches a data-mapping operation.
func (d *Dispatcher) DataOp(e DataOpEvent) {
	for _, t := range d.tools {
		t.OnDataOp(e)
	}
}

// Access dispatches an application memory access.
func (d *Dispatcher) Access(e AccessEvent) {
	for _, t := range d.tools {
		t.OnAccess(e)
	}
}

// Sync dispatches a synchronization event.
func (d *Dispatcher) Sync(e SyncEvent) {
	for _, t := range d.tools {
		t.OnSync(e)
	}
}

// Alloc dispatches a host allocation event.
func (d *Dispatcher) Alloc(e AllocEvent) {
	for _, t := range d.tools {
		t.OnAlloc(e)
	}
}
