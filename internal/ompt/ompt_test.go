package ompt

import (
	"testing"

	"repro/internal/mem"
)

// capture counts events per callback.
type capture struct {
	NopTool
	inits, targets, ends, dataOps, accesses, syncs, allocs int
}

func (c *capture) Name() string                 { return "capture" }
func (c *capture) OnDeviceInit(DeviceInitEvent) { c.inits++ }
func (c *capture) OnTargetBegin(TargetEvent)    { c.targets++ }
func (c *capture) OnTargetEnd(TargetEvent)      { c.ends++ }
func (c *capture) OnDataOp(DataOpEvent)         { c.dataOps++ }
func (c *capture) OnAccess(AccessEvent)         { c.accesses++ }
func (c *capture) OnSync(SyncEvent)             { c.syncs++ }
func (c *capture) OnAlloc(AllocEvent)           { c.allocs++ }

func TestDispatcherFansOut(t *testing.T) {
	var d Dispatcher
	if !d.Empty() {
		t.Error("fresh dispatcher not empty")
	}
	a, b := &capture{}, &capture{}
	d.Register(a)
	d.Register(b)
	if d.Empty() || len(d.Tools()) != 2 {
		t.Fatal("registration failed")
	}
	d.DeviceInit(DeviceInitEvent{})
	d.TargetBegin(TargetEvent{})
	d.TargetEnd(TargetEvent{})
	d.DataOp(DataOpEvent{})
	d.Access(AccessEvent{})
	d.Access(AccessEvent{})
	d.Sync(SyncEvent{})
	d.Alloc(AllocEvent{})
	for _, c := range []*capture{a, b} {
		if c.inits != 1 || c.targets != 1 || c.ends != 1 || c.dataOps != 1 ||
			c.accesses != 2 || c.syncs != 1 || c.allocs != 1 {
			t.Errorf("event counts: %+v", *c)
		}
	}
}

func TestNopToolIsComplete(t *testing.T) {
	var tool Tool = NopTool{}
	tool.OnDeviceInit(DeviceInitEvent{})
	tool.OnTargetBegin(TargetEvent{})
	tool.OnTargetEnd(TargetEvent{})
	tool.OnDataOp(DataOpEvent{})
	tool.OnAccess(AccessEvent{})
	tool.OnSync(SyncEvent{})
	tool.OnAlloc(AllocEvent{})
	if tool.Name() != "nop" {
		t.Errorf("Name = %q", tool.Name())
	}
}

func TestSourceLocString(t *testing.T) {
	cases := []struct {
		loc  SourceLoc
		want string
	}{
		{SourceLoc{}, "<unknown>"},
		{SourceLoc{File: "a.c", Line: 12, Func: "main"}, "a.c:12 in main"},
		{SourceLoc{File: "a.c", Line: 12}, "a.c:12"},
		{SourceLoc{File: "a.c"}, "a.c"},
	}
	for _, c := range cases {
		if got := c.loc.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.loc, got, c.want)
		}
	}
	if (SourceLoc{}).IsZero() != true {
		t.Error("zero loc not IsZero")
	}
	if (SourceLoc{File: "x"}).IsZero() {
		t.Error("nonzero loc IsZero")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[TargetKind]string{
		KindTarget: "target", KindTargetData: "target data",
		KindTargetEnterData: "target enter data", KindTargetExitData: "target exit data",
		KindTargetUpdate: "target update",
	} {
		if k.String() != want {
			t.Errorf("TargetKind %d = %q, want %q", k, k.String(), want)
		}
	}
	for k, want := range map[DataOpKind]string{
		OpAlloc: "alloc", OpDelete: "delete",
		OpTransferToDevice: "to-device", OpTransferFromDevice: "from-device",
	} {
		if k.String() != want {
			t.Errorf("DataOpKind %d = %q, want %q", k, k.String(), want)
		}
	}
	for k, want := range map[SyncKind]string{
		SyncTaskCreate: "task-create", SyncTaskBegin: "task-begin",
		SyncTaskEnd: "task-end", SyncTaskWait: "task-wait", SyncDependence: "dependence",
	} {
		if k.String() != want {
			t.Errorf("SyncKind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 145: "145", -3: "-3", 1000000: "1000000"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestAccessEventFields(t *testing.T) {
	e := AccessEvent{Addr: mem.Addr(0x1000), Size: 8, Write: true, Device: HostDevice, Base: mem.Addr(0x1000), Tag: "x"}
	if e.Device != HostDevice || !e.Write || e.Tag != "x" {
		t.Errorf("AccessEvent literal mangled: %+v", e)
	}
}
