package ompt

import "repro/internal/mem"

// DispatchMode tells tools what concurrency discipline the event source is
// about to use, so they can trade synchronization for speed when they own
// their state exclusively (replay Theorem 1) and keep it when they do not
// (online runtimes, shared stream sessions).
type DispatchMode uint8

// The dispatch modes.
const (
	// DispatchShared (the zero value): callbacks may arrive from multiple
	// goroutines with no per-word ownership. Tools must use their fully
	// synchronized (CAS/locked) paths.
	DispatchShared DispatchMode = iota
	// DispatchEpochSharded: epoch-parallel replay. Within an epoch each
	// worker owns its shard's words exclusively; the epoch barrier is the
	// publication fence. Tools may drop per-word CAS but must keep any
	// cross-shard structures synchronized.
	DispatchEpochSharded
	// DispatchSequential: a single goroutine delivers every callback.
	// Tools may drop all synchronization and enable single-threaded
	// accelerator structures (tag planes, lookup memos).
	DispatchSequential
)

// ModalTool is implemented by tools that adapt their synchronization to
// the dispatch mode. SetDispatchMode is called before any event of the
// new regime is dispatched, never concurrently with callbacks.
type ModalTool interface {
	SetDispatchMode(DispatchMode)
}

// SetDispatchMode forwards the mode to every registered tool that cares.
// Call it from the event source before dispatch begins.
func (d *Dispatcher) SetDispatchMode(m DispatchMode) {
	for _, t := range d.tools {
		if mt, ok := t.(ModalTool); ok {
			mt.SetDispatchMode(m)
		}
	}
}

// AccessBatch is a columnar run of access events: the hot scalar fields
// live in one slice each (structure-of-arrays), so the replay decode loop
// streams over dense pointer-free arrays, while the cold pointer-bearing
// fields (Tag, Loc) stay in the original event payloads, reached through
// Events only on slow paths. Copying strings per event would cost a GC
// write barrier each; aliasing the payload costs nothing. Batches are
// built by the trace layer from maximal runs of consecutive access events
// and consumed whole by tools that implement BatchTool. The aliased
// payloads must stay alive until the batch is dispatched — the trace
// layer flushes every batch before recycling or discarding its events.
type AccessBatch struct {
	Events  []*AccessEvent
	Addrs   []mem.Addr
	Sizes   []uint64
	Writes  []bool
	Devices []DeviceID
	Tasks   []TaskID
	Threads []ThreadID
	Bases   []mem.Addr
	Clocks  []uint64

	// Sites, when non-nil, maps each event to an ordinal in the site table
	// (SiteTags[s], SiteLocs[s] are event i's Tag and Loc for s = Sites[i]).
	// Builders that know the distinct (Tag, Loc) pairs up front — the
	// decode-once column set dedupes them in one pass over the trace —
	// populate it so consumers resolve a site with one index instead of
	// hashing tag and location per event. The table may be shared by many
	// batches (views of one trace all alias the same table), which lets
	// consumers cache per-table work keyed on the table's identity. Nil
	// means "not provided"; consumers must fall back to Events[i].
	Sites    []uint32
	SiteTags []string
	SiteLocs []SourceLoc
}

// Len returns the number of events in the batch.
func (b *AccessBatch) Len() int { return len(b.Addrs) }

// Reset empties the batch, keeping capacity for reuse. The Events column
// is cleared so the batch does not pin dispatched payloads.
func (b *AccessBatch) Reset() {
	clear(b.Events)
	b.Events = b.Events[:0]
	b.Addrs = b.Addrs[:0]
	b.Sizes = b.Sizes[:0]
	b.Writes = b.Writes[:0]
	b.Devices = b.Devices[:0]
	b.Tasks = b.Tasks[:0]
	b.Threads = b.Threads[:0]
	b.Bases = b.Bases[:0]
	b.Clocks = b.Clocks[:0]
	b.Sites, b.SiteTags, b.SiteLocs = nil, nil, nil
}

// Append adds one event to the batch. clock overrides e.Clock (the trace
// layer stamps the replay clock here, mirroring its per-event path).
func (b *AccessBatch) Append(e *AccessEvent, clock uint64) {
	b.Events = append(b.Events, e)
	b.Addrs = append(b.Addrs, e.Addr)
	b.Sizes = append(b.Sizes, e.Size)
	b.Writes = append(b.Writes, e.Write)
	b.Devices = append(b.Devices, e.Device)
	b.Tasks = append(b.Tasks, e.Task)
	b.Threads = append(b.Threads, e.Thread)
	b.Bases = append(b.Bases, e.Base)
	b.Clocks = append(b.Clocks, clock)
}

// At reconstructs event i as a plain AccessEvent (slow paths, reports),
// with the batch's replay clock stamped in.
func (b *AccessBatch) At(i int) AccessEvent {
	e := *b.Events[i]
	e.Clock = b.Clocks[i]
	return e
}

// BatchTool is implemented by tools with a columnar access fast path.
// OnAccessBatch must be observably equivalent to calling OnAccess on each
// event in order.
type BatchTool interface {
	OnAccessBatch(*AccessBatch)
}

// AccessBatch dispatches a run of accesses: tools with a columnar fast
// path consume the batch whole, everything else sees the per-event
// callbacks in order.
func (d *Dispatcher) AccessBatch(b *AccessBatch) {
	for _, t := range d.tools {
		if bt, ok := t.(BatchTool); ok {
			bt.OnAccessBatch(b)
			continue
		}
		for i, n := 0, b.Len(); i < n; i++ {
			t.OnAccess(b.At(i))
		}
	}
}
