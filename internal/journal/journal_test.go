package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ompt"
	"repro/internal/trace"
)

// sampleTrace builds a tiny but valid trace by hand.
func sampleTrace(n int) *trace.Trace {
	rec := trace.NewRecorder()
	rec.OnDeviceInit(ompt.DeviceInitEvent{Device: 1, Name: "gpu0"})
	for i := 0; i < n; i++ {
		rec.OnSync(ompt.SyncEvent{Task: 1})
	}
	return rec.Trace()
}

func mustOpen(t *testing.T) *Journal {
	t.Helper()
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	j := mustOpen(t)
	tr := sampleTrace(3)
	rec := Record{ID: "job-0", Tool: "arbalest", Key: "k-1", Events: len(tr.Events), Submitted: time.Now()}
	if err := j.Append(rec, tr); err != nil {
		t.Fatal(err)
	}

	jobs, _, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	got := jobs[0]
	if got.ID != "job-0" || got.Tool != "arbalest" || got.Key != "k-1" || got.Events != rec.Events {
		t.Errorf("recovered record %+v, want %+v", got.Record, rec)
	}
	if got.Status != StatusPending {
		t.Errorf("status %q, want pending", got.Status)
	}
	if got.Trace == nil || len(got.Trace.Events) != len(tr.Events) {
		t.Errorf("recovered trace %+v, want %d events", got.Trace, len(tr.Events))
	}
}

func TestLifecycleTransitions(t *testing.T) {
	j := mustOpen(t)
	tr := sampleTrace(1)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Events: 2, Submitted: time.Now()}, tr); err != nil {
		t.Fatal(err)
	}
	if err := j.Mark("job-0", StatusRunning, "", nil); err != nil {
		t.Fatal(err)
	}

	// Last status running => still recovered with a trace.
	jobs, _, _ := j.Recover()
	if len(jobs) != 1 || jobs[0].Status != StatusRunning || jobs[0].Trace == nil {
		t.Fatalf("running job recovered as %+v", jobs)
	}

	result := json.RawMessage(`{"issues":2}`)
	if err := j.Mark("job-0", StatusDone, "", result); err != nil {
		t.Fatal(err)
	}
	jobs, _, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	if jobs[0].Status != StatusDone || jobs[0].Trace != nil {
		t.Errorf("done job: status %q trace %v, want done with no trace", jobs[0].Status, jobs[0].Trace)
	}
	if string(jobs[0].Result) != `{"issues":2}` {
		t.Errorf("result %s, want {\"issues\":2}", jobs[0].Result)
	}
	if jobs[0].Finished.IsZero() {
		t.Error("done job has zero finished time")
	}
}

func TestFailedJobKeepsError(t *testing.T) {
	j := mustOpen(t)
	if err := j.Append(Record{ID: "job-7", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Mark("job-7", StatusFailed, "analyzer panicked: boom", nil); err != nil {
		t.Fatal(err)
	}
	jobs, _, _ := j.Recover()
	if len(jobs) != 1 || jobs[0].Status != StatusFailed || jobs[0].Error != "analyzer panicked: boom" {
		t.Fatalf("failed job recovered as %+v", jobs)
	}
}

func TestRemove(t *testing.T) {
	j := mustOpen(t)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove("job-0"); err != nil {
		t.Fatal(err)
	}
	if jobs, _, errs := j.Recover(); len(jobs) != 0 || len(errs) != 0 {
		t.Fatalf("after remove: jobs %v errs %v, want none", jobs, errs)
	}
	// Removing again is a no-op, not an error.
	if err := j.Remove("job-0"); err != nil {
		t.Fatalf("double remove: %v", err)
	}
}

func TestTornFinalLineIsTolerated(t *testing.T) {
	j := mustOpen(t)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(2)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append of the done mark: a torn, non-JSON tail.
	f, err := os.OpenFile(filepath.Join(j.Dir(), "job-0.meta"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"status":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jobs, _, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 1 || jobs[0].Status != StatusPending || jobs[0].Trace == nil {
		t.Fatalf("torn-tail job recovered as %+v, want pending with trace", jobs)
	}
}

func TestCorruptFirstLineReported(t *testing.T) {
	j := mustOpen(t)
	if err := os.WriteFile(filepath.Join(j.Dir(), "job-9.meta"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, _, errs := j.Recover()
	if len(jobs) != 0 || len(errs) != 1 {
		t.Fatalf("corrupt meta: jobs %v errs %v, want 0 jobs 1 error", jobs, errs)
	}
}

func TestRecoverOrderIsNumericAware(t *testing.T) {
	j := mustOpen(t)
	for _, id := range []string{"job-10", "job-2", "job-1"} {
		if err := j.Append(Record{ID: id, Tool: "arbalest", Submitted: time.Now()}, sampleTrace(1)); err != nil {
			t.Fatal(err)
		}
	}
	jobs, _, _ := j.Recover()
	var ids []string
	for _, rj := range jobs {
		ids = append(ids, rj.ID)
	}
	want := []string{"job-1", "job-2", "job-10"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order %v, want %v", ids, want)
		}
	}
}

func TestAppendFaultLeavesNoResidue(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	j := mustOpen(t)
	faultinject.Enable("journal.append", faultinject.Fault{Err: errors.New("disk full")})
	err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(1))
	if err == nil {
		t.Fatal("append succeeded under injected fault")
	}
	faultinject.Reset()
	if jobs, _, errs := j.Recover(); len(jobs) != 0 || len(errs) != 0 {
		t.Fatalf("residue after failed append: jobs %v errs %v", jobs, errs)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
