// Tenant log: the durable record of live-tuned tenant limits.
//
// Quotas set through the admin API (or re-tuned at runtime) must survive a
// daemon restart — otherwise a crash silently resets every tenant to the
// flag defaults and a previously throttled tenant gets a fresh, unlimited
// start. Every explicit limit change is an fsynced CRC-framed line in
// tenants.meta (same framing as the job meta log); recovery folds the log
// into the last limits per tenant and compacts the file so it cannot grow
// without bound across restarts. Flag-configured limits are applied before
// recovery, so the journaled (newer) tuning wins for any tenant present in
// both.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/tenant"
)

// tenantFile is the tenant log's file name inside the spool directory.
const tenantFile = "tenants.meta"

// TenantEntry is one line of the tenant log.
type TenantEntry struct {
	Name   string        `json:"name"`
	Limits tenant.Limits `json:"limits"`
	Time   time.Time     `json:"time"`
}

// TenantLog appends tenant limit changes to the spool. Obtain one with
// Journal.Tenants. Methods are safe for concurrent use.
type TenantLog struct {
	j *Journal
}

// Tenants returns the journal's tenant log.
func (j *Journal) Tenants() *TenantLog { return &TenantLog{j: j} }

func (t *TenantLog) path() string { return filepath.Join(t.j.dir, tenantFile) }

// RecordLimits durably records that name's limits were set to lim. Honors
// the "journal.tenant" fault point. A write failure degrades the spool's
// writable flag like any other journal write, but the in-memory tuning
// still applies — durability is best effort for tuning, mandatory only for
// job acceptance.
func (t *TenantLog) RecordLimits(name string, lim tenant.Limits) (err error) {
	if err := faultinject.Fire("journal.tenant"); err != nil {
		t.j.noteWrite(err)
		return err
	}
	defer func() { t.j.noteWrite(err) }()
	payload, err := json.Marshal(TenantEntry{Name: name, Limits: lim, Time: time.Now()})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(t.path(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frameMetaLine(payload)); err != nil {
		f.Close()
		return err
	}
	if err := t.j.sync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RecoverTenants reads the tenant log, folds it into the latest limits per
// tenant, and compacts the file. Torn or corrupt lines are dropped and
// counted in stats, matching the job meta log's corruption tolerance; a
// missing log is an empty map, not an error.
func (t *TenantLog) RecoverTenants(stats *RecoverStats) (map[string]tenant.Limits, error) {
	out := map[string]tenant.Limits{}
	data, err := os.ReadFile(t.path())
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return out, fmt.Errorf("journal: tenant log: %w", err)
	}
	dropped := 0
	for len(data) > 0 {
		var raw []byte
		if nl := bytes.IndexByte(data, '\n'); nl < 0 {
			raw, data = data, nil
		} else {
			raw, data = data[:nl], data[nl+1:]
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		payload, ok := parseFramedPayload(raw)
		if !ok {
			dropped++
			continue
		}
		var e TenantEntry
		if json.Unmarshal(payload, &e) != nil || e.Name == "" {
			dropped++
			continue
		}
		out[e.Name] = e.Limits // last write wins
	}
	if stats != nil {
		stats.TruncatedRecords += dropped
	}
	if err := t.compact(out); err != nil {
		return out, fmt.Errorf("journal: tenant log compaction: %w", err)
	}
	return out, nil
}

// compact atomically rewrites the tenant log to one line per tenant.
func (t *TenantLog) compact(limits map[string]tenant.Limits) error {
	var buf bytes.Buffer
	names := make([]string, 0, len(limits))
	for name := range limits {
		names = append(names, name)
	}
	sort.Strings(names)
	now := time.Now()
	for _, name := range names {
		payload, err := json.Marshal(TenantEntry{Name: name, Limits: limits[name], Time: now})
		if err != nil {
			return err
		}
		buf.Write(frameMetaLine(payload))
	}
	tmp, err := os.CreateTemp(t.j.dir, tenantFile+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, t.path())
}
