package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzJournalRecovery feeds arbitrary bytes to the spool recovery path as a
// job's meta file. Recover must never panic, and any job it does hand back
// for re-enqueue (pending or running) must carry a usable trace.
func FuzzJournalRecovery(f *testing.F) {
	// Build a real meta file — append, run, done — and seed with it plus
	// truncated and legacy variants.
	seedDir := f.TempDir()
	j, err := Open(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	rec := Record{ID: "job-0", Tool: "arbalest", Key: "k", Events: 4, Submitted: time.Unix(1754000000, 0)}
	if err := j.Append(rec, sampleTrace(3)); err != nil {
		f.Fatal(err)
	}
	if err := j.Mark("job-0", StatusRunning, "", nil); err != nil {
		f.Fatal(err)
	}
	if err := j.Mark("job-0", StatusDone, "", json.RawMessage(`{"issues":0}`)); err != nil {
		f.Fatal(err)
	}
	meta, err := os.ReadFile(filepath.Join(seedDir, "job-0.meta"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(meta)
	f.Add(meta[:len(meta)-4])                                  // torn final record
	f.Add([]byte(`{"id":"job-0","tool":"arbalest"}` + "\n"))   // legacy bare-JSON line
	f.Add([]byte("c2 deadbeef {\"id\":\"job-0\"}\n" + "\n\n")) // bad CRC + blank lines
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "job-0.meta"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		jj, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		jobs, _, _ := jj.Recover()
		for _, rj := range jobs {
			if rj.Status == StatusPending || rj.Status == StatusRunning {
				if rj.Trace == nil {
					t.Fatalf("recovered %s job %q with no trace", rj.Status, rj.ID)
				}
			}
		}
	})
}
