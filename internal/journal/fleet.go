// Fleet log: the coordinator's durable lease ledger.
//
// A fleet coordinator fences job ownership with per-job monotone tokens: a
// write (heartbeat, checkpoint, result) is only accepted from the holder of
// the current token, so a zombie worker whose lease expired cannot corrupt a
// job that was rescheduled onto someone else. That guarantee must survive a
// coordinator restart — if the new life re-issued token 1 for a job whose
// old life already issued token 3, the old holder's delayed writes would be
// accepted again. The fleet log is the write-ahead record that prevents it:
// every token issue (and worker registration) is an fsynced CRC-framed line
// in fleet.meta, appended before the lease is granted, and recovery replays
// the log taking the maximum token per job.
//
// The log is compacted on recovery (rewritten to one line per live fact,
// atomically) so it cannot grow without bound across restarts.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultinject"
)

// fleetFile is the fleet log's file name inside the spool directory.
const fleetFile = "fleet.meta"

// FleetEntry is one line of the fleet log.
type FleetEntry struct {
	// Kind is "token" (a lease token issue for Job) or "worker" (a worker
	// registration).
	Kind string `json:"kind"`
	// Job and Token record a token issue (Kind "token").
	Job   string `json:"job,omitempty"`
	Token uint64 `json:"token,omitempty"`
	// Worker records a registration (Kind "worker").
	Worker string    `json:"worker,omitempty"`
	Time   time.Time `json:"time"`
}

// FleetState is what RecoverFleet reconstructs: the highest token ever
// issued per job, and the set of registered workers.
type FleetState struct {
	Tokens  map[string]uint64
	Workers []string
}

// FleetLog appends fencing-token issues and worker registrations to the
// spool. Obtain one with Journal.Fleet. Methods are safe for concurrent use;
// the coordinator serializes grants per job by construction.
type FleetLog struct {
	j *Journal
}

// Fleet returns the journal's fleet log.
func (j *Journal) Fleet() *FleetLog { return &FleetLog{j: j} }

func (f *FleetLog) path() string { return filepath.Join(f.j.dir, fleetFile) }

// RecordToken durably records that token was issued for job. It must return
// nil before the lease carrying the token is granted — that ordering is what
// makes fencing survive a coordinator restart. Honors the "journal.fleet"
// fault point.
func (f *FleetLog) RecordToken(job string, token uint64) error {
	return f.append(FleetEntry{Kind: "token", Job: job, Token: token, Time: time.Now()})
}

// RecordWorker durably records a worker registration, so a restarted
// coordinator knows the fleet had remote capacity and holds recovered jobs
// for re-lease instead of stampeding them through the inline pool.
func (f *FleetLog) RecordWorker(id string) error {
	return f.append(FleetEntry{Kind: "worker", Worker: id, Time: time.Now()})
}

func (f *FleetLog) append(e FleetEntry) (err error) {
	if err := faultinject.Fire("journal.fleet"); err != nil {
		f.j.noteWrite(err)
		return err
	}
	defer func() { f.j.noteWrite(err) }()
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	fl, err := os.OpenFile(f.path(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := fl.Write(frameMetaLine(payload)); err != nil {
		fl.Close()
		return err
	}
	if err := f.j.sync(fl); err != nil {
		fl.Close()
		return err
	}
	return fl.Close()
}

// RecoverFleet reads the fleet log, folds it into the max token per job and
// the worker set, and compacts the file. Torn trailing lines (crash
// mid-append) and corrupt mid-file lines are dropped and counted in stats,
// matching the job meta log's corruption tolerance; a missing log is an
// empty state, not an error.
func (f *FleetLog) RecoverFleet(stats *RecoverStats) (FleetState, error) {
	st := FleetState{Tokens: map[string]uint64{}}
	data, err := os.ReadFile(f.path())
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("journal: fleet log: %w", err)
	}
	workers := map[string]bool{}
	dropped := 0
	for len(data) > 0 {
		var raw []byte
		if nl := bytes.IndexByte(data, '\n'); nl < 0 {
			raw, data = data, nil
		} else {
			raw, data = data[:nl], data[nl+1:]
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		payload, ok := parseFramedPayload(raw)
		if !ok {
			dropped++
			continue
		}
		var e FleetEntry
		if json.Unmarshal(payload, &e) != nil {
			dropped++
			continue
		}
		switch e.Kind {
		case "token":
			if e.Token > st.Tokens[e.Job] {
				st.Tokens[e.Job] = e.Token
			}
		case "worker":
			workers[e.Worker] = true
		}
	}
	if stats != nil {
		stats.TruncatedRecords += dropped
	}
	for w := range workers {
		st.Workers = append(st.Workers, w)
	}
	sort.Strings(st.Workers)
	if err := f.compact(st); err != nil {
		return st, fmt.Errorf("journal: fleet log compaction: %w", err)
	}
	return st, nil
}

// compact atomically rewrites the fleet log to one line per live fact.
func (f *FleetLog) compact(st FleetState) error {
	var buf bytes.Buffer
	jobs := make([]string, 0, len(st.Tokens))
	for job := range st.Tokens {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	now := time.Now()
	for _, job := range jobs {
		payload, err := json.Marshal(FleetEntry{Kind: "token", Job: job, Token: st.Tokens[job], Time: now})
		if err != nil {
			return err
		}
		buf.Write(frameMetaLine(payload))
	}
	for _, w := range st.Workers {
		payload, err := json.Marshal(FleetEntry{Kind: "worker", Worker: w, Time: now})
		if err != nil {
			return err
		}
		buf.Write(frameMetaLine(payload))
	}
	tmp, err := os.CreateTemp(f.j.dir, fleetFile+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, f.path())
}
