package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMidFileCorruptLineSkipped: a corrupt line in the middle of a meta log
// must not mask the transitions after it — otherwise a bit flip could
// resurrect a finished job as pending and re-run it.
func TestMidFileCorruptLineSkipped(t *testing.T) {
	j := mustOpen(t)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Mark("job-0", StatusRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Mark("job-0", StatusDone, "", json.RawMessage(`{"issues":0}`)); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside line 2 (the running mark).
	path := filepath.Join(j.Dir(), "job-0.meta")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("meta has %d lines, want >= 3", len(lines))
	}
	lines[1][len(lines[1])/2] ^= 0x20
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	jobs, stats, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 1 || jobs[0].Status != StatusDone {
		t.Fatalf("recovered %+v, want one done job", jobs)
	}
	if stats.TruncatedRecords != 1 {
		t.Errorf("TruncatedRecords = %d, want 1", stats.TruncatedRecords)
	}
}

// TestTornTrailingRecordTruncatedOnce: the first recovery counts the torn
// tail and physically truncates it off the file, so a second recovery is
// clean.
func TestTornTrailingRecordTruncatedOnce(t *testing.T) {
	j := mustOpen(t)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, sampleTrace(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(j.Dir(), "job-0.meta")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`c2 0bad00 {"status":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jobs, stats, errs := j.Recover()
	if len(errs) != 0 || len(jobs) != 1 || jobs[0].Status != StatusPending {
		t.Fatalf("first recover: jobs %+v errs %v", jobs, errs)
	}
	if stats.TruncatedRecords != 1 {
		t.Errorf("first recover TruncatedRecords = %d, want 1", stats.TruncatedRecords)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Errorf("meta not truncated back to %d bytes (now %d)", len(before), len(after))
	}

	_, stats, errs = j.Recover()
	if len(errs) != 0 || stats.TruncatedRecords != 0 {
		t.Errorf("second recover: errs %v TruncatedRecords %d, want clean", errs, stats.TruncatedRecords)
	}
}

// TestCheckpointRoundTripAndRecovery covers the checkpoint sidecar: write,
// read back, attach on Recover, and drop-with-count when the file is
// corrupt — a bad checkpoint must cost a re-run from zero, never a wrong
// resume.
func TestCheckpointRoundTripAndRecovery(t *testing.T) {
	j := mustOpen(t)
	tr := sampleTrace(3)
	if err := j.Append(Record{ID: "job-0", Tool: "arbalest", Submitted: time.Now()}, tr); err != nil {
		t.Fatal(err)
	}
	if err := j.Mark("job-0", StatusRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	ck := &trace.Checkpoint{
		JobID:     "job-0",
		Tool:      "arbalest",
		NextEvent: 2,
		Events:    uint64(len(tr.Events)),
		Created:   time.Now(),
		State:     json.RawMessage(`{"vsm":{}}`),
	}
	if err := j.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	got, err := j.ReadCheckpoint("job-0")
	if err != nil {
		t.Fatal(err)
	}
	if got.NextEvent != ck.NextEvent || got.Tool != ck.Tool || !bytes.Equal(got.State, ck.State) {
		t.Errorf("read back %+v, want %+v", got, ck)
	}
	if _, err := j.ReadCheckpoint("job-none"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint: err %v, want ErrNotExist", err)
	}

	jobs, stats, errs := j.Recover()
	if len(errs) != 0 || len(jobs) != 1 {
		t.Fatalf("recover: jobs %+v errs %v", jobs, errs)
	}
	if jobs[0].Checkpoint == nil || jobs[0].Checkpoint.NextEvent != 2 {
		t.Fatalf("recovered checkpoint %+v, want NextEvent 2", jobs[0].Checkpoint)
	}
	if stats.DroppedCheckpoints != 0 {
		t.Errorf("DroppedCheckpoints = %d, want 0", stats.DroppedCheckpoints)
	}

	// Corrupt the checkpoint: recovery must drop it (counted), delete the
	// file, and still hand the job back for a from-scratch re-run.
	ckptPath := filepath.Join(j.Dir(), "job-0.ckpt")
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x04
	if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, stats, errs = j.Recover()
	if len(errs) != 0 || len(jobs) != 1 || jobs[0].Checkpoint != nil {
		t.Fatalf("corrupt-checkpoint recover: jobs %+v errs %v, want one job with nil checkpoint", jobs, errs)
	}
	if stats.DroppedCheckpoints != 1 {
		t.Errorf("DroppedCheckpoints = %d, want 1", stats.DroppedCheckpoints)
	}
	if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt checkpoint file not deleted: stat err %v", err)
	}

	// RemoveCheckpoint tolerates absence.
	if err := j.RemoveCheckpoint("job-0"); err != nil {
		t.Errorf("RemoveCheckpoint after drop: %v", err)
	}
}

// TestCorruptSpoolTraceIsPerJobError: a bit flip in one job's framed trace
// file fails that job with a structured corruption error and leaves every
// other job recoverable.
func TestCorruptSpoolTraceIsPerJobError(t *testing.T) {
	j := mustOpen(t)
	for _, id := range []string{"job-0", "job-1"} {
		if err := j.Append(Record{ID: id, Tool: "arbalest", Submitted: time.Now()}, sampleTrace(3)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(j.Dir(), "job-0.trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	jobs, _, errs := j.Recover()
	if len(jobs) != 1 || jobs[0].ID != "job-1" {
		t.Fatalf("recovered %+v, want only job-1", jobs)
	}
	if len(errs) != 1 {
		t.Fatalf("recover errors %v, want exactly one", errs)
	}
	var je *JobError
	if !errors.As(errs[0], &je) || je.ID != "job-0" {
		t.Fatalf("error %v, want *JobError for job-0", errs[0])
	}
	var ce *trace.CorruptionError
	if !errors.As(errs[0], &ce) {
		t.Fatalf("error %v does not unwrap to *trace.CorruptionError", errs[0])
	}
}
