// Package journal is arbalestd's write-ahead job journal: a spool
// directory that makes accepted jobs survive a daemon crash.
//
// Each accepted job gets up to three files under the spool directory:
//
//	<id>.trace  the submitted trace in the CRC32C-framed encoding, written
//	            and fsynced before the job is acknowledged (the write-ahead
//	            part)
//	<id>.meta   an append-only log of lifecycle transitions: the first line
//	            carries the job's identity (tool, events, idempotency key,
//	            submit time) with status "pending"; subsequent lines record
//	            running/done/failed transitions. Each line is CRC-framed:
//	            "c2 <crc32c-hex8> <json>\n" (bare legacy JSON lines are
//	            still accepted on read)
//	<id>.ckpt   the job's latest replay checkpoint (trace.Checkpoint),
//	            written atomically at epoch boundaries while the job runs
//
// On startup, Recover scans the spool: jobs whose last recorded status is
// pending or running are returned with their traces — and their latest
// valid checkpoint, when one exists — so the service can re-enqueue each
// exactly once and resume from where the crash cut it off; jobs already
// done or failed are returned as history (without traces) so job listings
// and idempotency-key dedup survive the restart. Remove deletes all three
// files when the retention GC evicts a job.
//
// Corruption tolerance: a torn trailing meta line (crash mid-append) is
// truncated off and counted, not fatal; a corrupt line in the middle of a
// meta log (bit rot) is skipped and counted, so the entries after it still
// apply; a corrupt checkpoint is dropped and counted — the job re-runs
// from the trace, which is always correct, just slower.
//
// Fault points (package faultinject): "journal.append" and "journal.mark"
// can inject write errors, "journal.fsync" can inject fsync latency, and
// "journal.checkpoint" can inject checkpoint-write errors or latency.
package journal

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// The lifecycle statuses a journal records. They mirror the service's job
// states but are kept as plain strings so the journal stays a layer below
// the service.
const (
	StatusPending = "pending"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Entry is one line of a job's meta log. The first line of a file has
// Status "pending" and carries the job's identity; later lines only need
// Status plus the terminal fields.
type Entry struct {
	ID        string    `json:"id,omitempty"`
	Tool      string    `json:"tool,omitempty"`
	Key       string    `json:"key,omitempty"`    // idempotency key, optional
	Tenant    string    `json:"tenant,omitempty"` // owning tenant, "" for the default
	Events    int       `json:"events,omitempty"`
	Submitted time.Time `json:"submitted,omitempty"`
	// DeadlineMs is the client-propagated completion deadline in Unix
	// milliseconds, 0 when none — persisted so a recovered job can still
	// be shed instead of replayed when its deadline already passed.
	DeadlineMs int64           `json:"deadlineMs,omitempty"`
	Status     string          `json:"status"`
	Time       time.Time       `json:"time"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Record identifies a job at accept time.
type Record struct {
	ID        string
	Tool      string
	Key       string // idempotency key, "" if the client sent none
	Tenant    string // owning tenant, "" for the default tenant
	Events    int
	Submitted time.Time
	Deadline  time.Time // client-propagated completion deadline, zero when none
}

// RecoveredJob is one job found in the spool by Recover.
type RecoveredJob struct {
	Record
	// Status is the job's last journaled status. Pending and running jobs
	// carry a Trace; terminal jobs carry Error/Result instead.
	Status   string
	Trace    *trace.Trace
	Started  time.Time
	Finished time.Time
	Error    string
	Result   json.RawMessage
	// Checkpoint is the job's latest valid replay checkpoint, nil when none
	// was written or the file failed its CRC check (then the job simply
	// re-runs from event zero).
	Checkpoint *trace.Checkpoint
}

// RecoverStats counts the corruption Recover repaired while scanning the
// spool. The service folds these into its metrics.
type RecoverStats struct {
	// TruncatedRecords is the number of torn or corrupt meta lines dropped:
	// torn trailing lines are truncated off the file, corrupt mid-file
	// lines are skipped.
	TruncatedRecords int
	// DroppedCheckpoints is the number of checkpoint files discarded
	// because they failed CRC or sanity checks.
	DroppedCheckpoints int
}

// Journal persists job traces and lifecycle transitions under one spool
// directory. Methods are safe for concurrent use on distinct job IDs; the
// service serializes transitions for a single job by construction (a job
// is owned by one worker at a time).
//
// The journal additionally tracks whether the spool is writable: any append,
// mark, or checkpoint write failure (ENOSPC, a yanked disk, an injected
// fault) flips an unwritable flag, and Writable probes the directory before
// reporting healthy again. The daemon's /readyz degrades to 503 while the
// spool is unwritable, so load balancers shed traffic from an instance that
// can no longer honor the write-ahead contract — each individual failure
// still fails only the job or session that hit it, never the process.
type Journal struct {
	dir string

	// writable is false after a spool write failure until a probe write
	// succeeds. Stored inverted (0 = writable) so the zero value of the
	// field matches a freshly opened, healthy journal.
	unwritable atomic.Bool
}

// Open creates the spool directory if needed and returns a Journal over
// it.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("journal: empty spool directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the spool directory path.
func (j *Journal) Dir() string { return j.dir }

func (j *Journal) tracePath(id string) string { return filepath.Join(j.dir, id+".trace") }
func (j *Journal) metaPath(id string) string  { return filepath.Join(j.dir, id+".meta") }
func (j *Journal) ckptPath(id string) string  { return filepath.Join(j.dir, id+".ckpt") }

// noteWrite records the outcome of a spool write: a failure marks the spool
// unwritable (readiness degrades), a success marks it healthy again.
func (j *Journal) noteWrite(err error) {
	j.unwritable.Store(err != nil)
}

// Writable reports whether the spool directory is accepting writes. While
// the unwritable flag is set, each call attempts a small probe write (the
// probe honors the "journal.append" fault point, so an injected disk-full
// fault keeps the journal unhealthy exactly like a real full disk would);
// the flag clears as soon as a probe lands. The common healthy path is one
// atomic load.
func (j *Journal) Writable() bool {
	if !j.unwritable.Load() {
		return true
	}
	if err := j.probe(); err != nil {
		return false
	}
	j.unwritable.Store(false)
	return true
}

// probe attempts a tiny write-sync-remove cycle in the spool directory.
func (j *Journal) probe() error {
	if err := faultinject.Fire("journal.append"); err != nil {
		return err
	}
	path := filepath.Join(j.dir, ".probe")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Remove(path)
}

// Append journals a newly accepted job: the trace first, fsynced, then
// the initial pending meta entry, fsynced. If any step fails the partial
// files are removed so a failed accept leaves no spool residue, and the
// caller must reject the submission — the write-ahead contract is that a
// job is only acknowledged after Append returns nil.
func (j *Journal) Append(rec Record, tr *trace.Trace) error {
	if err := faultinject.Fire("journal.append"); err != nil {
		j.noteWrite(err)
		return err
	}
	if err := j.writeTrace(rec.ID, tr); err != nil {
		j.removeFiles(rec.ID)
		return err
	}
	first := Entry{
		ID: rec.ID, Tool: rec.Tool, Key: rec.Key, Tenant: rec.Tenant, Events: rec.Events,
		Submitted: rec.Submitted, DeadlineMs: deadlineMs(rec.Deadline),
		Status: StatusPending, Time: rec.Submitted,
	}
	if err := j.appendMeta(rec.ID, first); err != nil {
		j.removeFiles(rec.ID)
		return err
	}
	return nil
}

// Mark appends a lifecycle transition for the job. errMsg and result are
// only meaningful for the failed and done statuses respectively. A mark
// failure is not fatal to the job — the service logs it and continues —
// but a crash before a terminal mark means the job is re-run on recovery,
// which is the at-least-once side of the write-ahead design (idempotency
// keys make the rerun invisible to clients).
func (j *Journal) Mark(id, status, errMsg string, result json.RawMessage) error {
	if err := faultinject.Fire("journal.mark"); err != nil {
		j.noteWrite(err)
		return err
	}
	return j.appendMeta(id, Entry{
		Status: status, Time: time.Now(), Error: errMsg, Result: result,
	})
}

// Remove deletes the job's spool files (retention GC).
func (j *Journal) Remove(id string) error {
	var firstErr error
	for _, p := range []string{j.tracePath(id), j.metaPath(id), j.ckptPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// WriteCheckpoint atomically persists the job's latest replay checkpoint,
// replacing any previous one. Honors the "journal.checkpoint" fault point.
func (j *Journal) WriteCheckpoint(ck *trace.Checkpoint) error {
	if err := faultinject.Fire("journal.checkpoint"); err != nil {
		j.noteWrite(err)
		return err
	}
	err := ck.WriteFile(j.ckptPath(ck.JobID))
	j.noteWrite(err)
	return err
}

// ReadCheckpoint loads the job's checkpoint. os.ErrNotExist when none was
// written; *trace.CorruptionError when the file fails its CRC check.
func (j *Journal) ReadCheckpoint(id string) (*trace.Checkpoint, error) {
	return trace.ReadCheckpointFile(j.ckptPath(id))
}

// RemoveCheckpoint deletes the job's checkpoint file, if any (terminal
// jobs no longer need one).
func (j *Journal) RemoveCheckpoint(id string) error {
	if err := os.Remove(j.ckptPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Recover scans the spool directory and reconstructs every journaled job
// from its meta log. Jobs whose last status is pending or running are
// loaded with their traces (ready to re-enqueue) and their latest valid
// checkpoint; terminal jobs are returned as history. Jobs with unreadable
// meta or trace files are skipped and reported in the returned error
// list — recovery is best effort per job, never all-or-nothing — and the
// corruption repaired along the way (torn meta lines truncated, corrupt
// checkpoints dropped) is counted in RecoverStats. Results are sorted by
// ID so replay order is deterministic.
func (j *Journal) Recover() ([]RecoveredJob, RecoverStats, []error) {
	var stats RecoverStats
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, stats, []error{fmt.Errorf("journal: %w", err)}
	}
	var jobs []RecoveredJob
	var errs []error
	for _, de := range entries {
		name := de.Name()
		if !strings.HasSuffix(name, ".meta") {
			continue
		}
		// Subsystem logs share the spool and the framing but are not job
		// lifecycle logs; their owners recover them separately.
		if name == fleetFile || name == tenantFile {
			continue
		}
		id := strings.TrimSuffix(name, ".meta")
		rj, err := j.recoverOne(id, &stats)
		if err != nil {
			errs = append(errs, &JobError{ID: id, Err: err})
			continue
		}
		jobs = append(jobs, rj)
	}
	sort.Slice(jobs, func(a, b int) bool {
		// Numeric-aware so job-10 sorts after job-9.
		x, y := jobs[a].ID, jobs[b].ID
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		return x < y
	})
	return jobs, stats, errs
}

// JobError is a recovery failure scoped to one spooled job, so callers
// can log the job id as a structured attribute. Its message matches the
// historical "journal: job <id>: <cause>" format.
type JobError struct {
	ID  string
	Err error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("journal: job %s: %v", e.ID, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// deadlineMs converts a deadline to Unix milliseconds (0 for none).
func deadlineMs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// msToDeadline is the inverse of deadlineMs.
func msToDeadline(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}

// metaCRC is the CRC32C table framing meta lines.
var metaCRC = crc32.MakeTable(crc32.Castagnoli)

// metaFramePrefix opens a CRC-framed meta line: "c2 <crc32c-hex8> <json>".
const metaFramePrefix = "c2 "

// frameMetaLine wraps one marshaled entry in the CRC frame, newline
// included.
func frameMetaLine(payload []byte) []byte {
	out := make([]byte, 0, len(metaFramePrefix)+8+1+len(payload)+1)
	out = append(out, metaFramePrefix...)
	var sum [4]byte
	crc := crc32.Checksum(payload, metaCRC)
	sum[0], sum[1], sum[2], sum[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	out = hex.AppendEncode(out, sum[:])
	out = append(out, ' ')
	out = append(out, payload...)
	return append(out, '\n')
}

// parseFramedPayload verifies one CRC-framed meta line and returns its
// payload. Bare lines without the frame prefix (the pre-framing format) are
// returned as-is. A false result means the frame is torn or corrupt.
func parseFramedPayload(raw []byte) ([]byte, bool) {
	if !bytes.HasPrefix(raw, []byte(metaFramePrefix)) {
		return raw, true
	}
	rest := raw[len(metaFramePrefix):]
	if len(rest) < 9 || rest[8] != ' ' {
		return nil, false
	}
	sum, err := hex.DecodeString(string(rest[:8]))
	if err != nil {
		return nil, false
	}
	payload := rest[9:]
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if crc32.Checksum(payload, metaCRC) != want {
		return nil, false
	}
	return payload, true
}

// parseMetaLine decodes one meta line into an Entry. CRC-framed lines are
// verified; bare JSON lines (the pre-framing format) are accepted as-is. A
// false result means the line is torn or corrupt.
func parseMetaLine(raw []byte) (Entry, bool) {
	payload, ok := parseFramedPayload(raw)
	if !ok {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return Entry{}, false
	}
	return e, true
}

// readMetaLog reads and repairs one meta log, returning its valid entries
// in order. Torn or corrupt lines are repaired in place: a bad trailing
// line (crash mid-append) is truncated off the file, and a bad mid-file
// line is skipped so the entries after it still apply — both are counted
// in stats.TruncatedRecords. Only an unreadable first line is fatal, since
// without it the record has no identity. Shared by job (.meta) and stream
// (.smeta) recovery.
func readMetaLog(path string, stats *RecoverStats) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	line := 0
	var off int64 // byte offset of the line being parsed
	for len(data) > 0 {
		var raw []byte
		nl := bytes.IndexByte(data, '\n')
		lineLen := int64(nl) + 1
		if nl < 0 {
			raw, data = data, nil
			lineLen = int64(len(raw))
		} else {
			raw, data = data[:nl], data[nl+1:]
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			off += lineLen
			continue
		}
		line++
		e, ok := parseMetaLine(raw)
		if !ok {
			if line == 1 {
				return nil, fmt.Errorf("meta line 1 is torn or corrupt")
			}
			stats.TruncatedRecords++
			if len(bytes.TrimSpace(data)) == 0 {
				// Torn trailing record (crash mid-append): cut it off so the
				// next recovery — and any other reader — sees a clean log.
				if terr := os.Truncate(path, off); terr != nil {
					return nil, fmt.Errorf("truncating torn meta record: %w", terr)
				}
				break
			}
			// Corrupt line with valid records after it (bit rot): skip it
			// but keep applying the later transitions, so a corrupt
			// mid-file line cannot silently resurrect an already-finished
			// record.
			off += lineLen
			continue
		}
		off += lineLen
		entries = append(entries, e)
	}
	if line == 0 {
		return nil, errors.New("empty meta file")
	}
	return entries, nil
}

// recoverOne reads one job's meta log and, for non-terminal jobs, its
// trace and latest checkpoint.
func (j *Journal) recoverOne(id string, stats *RecoverStats) (RecoveredJob, error) {
	entries, err := readMetaLog(j.metaPath(id), stats)
	if err != nil {
		return RecoveredJob{}, err
	}

	var rj RecoveredJob
	for i, e := range entries {
		if i == 0 {
			if e.ID != id {
				return RecoveredJob{}, fmt.Errorf("meta identity %q does not match file %q", e.ID, id)
			}
			rj.Record = Record{
				ID: e.ID, Tool: e.Tool, Key: e.Key, Tenant: e.Tenant,
				Events: e.Events, Submitted: e.Submitted, Deadline: msToDeadline(e.DeadlineMs),
			}
		}
		rj.Status = e.Status
		switch e.Status {
		case StatusRunning:
			rj.Started = e.Time
		case StatusDone, StatusFailed:
			rj.Finished = e.Time
			rj.Error = e.Error
			rj.Result = e.Result
		}
	}
	if rj.Status == StatusPending || rj.Status == StatusRunning {
		tf, err := os.Open(j.tracePath(id))
		if err != nil {
			return RecoveredJob{}, err
		}
		defer tf.Close()
		tr, err := trace.Load(tf)
		if err != nil {
			return RecoveredJob{}, err
		}
		rj.Trace = tr
		// A checkpoint is an optimization, never a requirement: a corrupt
		// one is dropped (and deleted, so it cannot fail again next boot)
		// and the job re-runs from the trace.
		if ck, err := j.ReadCheckpoint(id); err == nil {
			rj.Checkpoint = ck
		} else if !errors.Is(err, os.ErrNotExist) {
			stats.DroppedCheckpoints++
			_ = os.Remove(j.ckptPath(id))
		}
	}
	return rj, nil
}

// writeTrace writes and fsyncs the job's trace file in the CRC32C-framed
// encoding, so later corruption of the spool is detected at read time
// instead of silently mis-parsing.
func (j *Journal) writeTrace(id string, tr *trace.Trace) (err error) {
	defer func() { j.noteWrite(err) }()
	f, err := os.OpenFile(j.tracePath(id), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := tr.SaveFramed(f); err != nil {
		f.Close()
		return err
	}
	if err := j.sync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// appendMeta appends one fsynced CRC-framed entry line to the job's meta
// log.
func (j *Journal) appendMeta(id string, e Entry) error {
	return j.appendMetaFile(j.metaPath(id), e)
}

// appendMetaFile appends one fsynced CRC-framed entry line to the given
// meta log (job .meta or stream .smeta).
func (j *Journal) appendMetaFile(path string, e Entry) (err error) {
	defer func() { j.noteWrite(err) }()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	b, err := json.Marshal(e)
	if err != nil {
		f.Close()
		return err
	}
	b = frameMetaLine(b)
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := j.sync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sync fsyncs f, honoring the injected fsync-latency fault point.
func (j *Journal) sync(f *os.File) error {
	if err := faultinject.Fire("journal.fsync"); err != nil {
		return err
	}
	return f.Sync()
}

// removeFiles best-effort deletes a job's spool files after a failed
// Append.
func (j *Journal) removeFiles(id string) {
	_ = os.Remove(j.tracePath(id))
	_ = os.Remove(j.metaPath(id))
}

// Trace re-reads a journaled job's trace from the spool, for tools that
// want to re-analyze history.
func (j *Journal) Trace(id string) (*trace.Trace, error) {
	f, err := os.Open(j.tracePath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Load(f)
}
