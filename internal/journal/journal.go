// Package journal is arbalestd's write-ahead job journal: a spool
// directory that makes accepted jobs survive a daemon crash.
//
// Each accepted job gets two files under the spool directory:
//
//	<id>.trace  the submitted JSON-lines trace, written and fsynced before
//	            the job is acknowledged (the write-ahead part)
//	<id>.meta   an append-only JSON-lines log of lifecycle transitions:
//	            the first line carries the job's identity (tool, events,
//	            idempotency key, submit time) with status "pending";
//	            subsequent lines record running/done/failed transitions
//
// On startup, Recover scans the spool: jobs whose last recorded status is
// pending or running are returned with their traces so the service can
// re-enqueue each exactly once; jobs already done or failed are returned
// as history (without traces) so job listings and idempotency-key dedup
// survive the restart. Remove deletes both files when the retention GC
// evicts a job.
//
// Fault points (package faultinject): "journal.append" and "journal.mark"
// can inject write errors, "journal.fsync" can inject fsync latency.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// The lifecycle statuses a journal records. They mirror the service's job
// states but are kept as plain strings so the journal stays a layer below
// the service.
const (
	StatusPending = "pending"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Entry is one line of a job's meta log. The first line of a file has
// Status "pending" and carries the job's identity; later lines only need
// Status plus the terminal fields.
type Entry struct {
	ID        string          `json:"id,omitempty"`
	Tool      string          `json:"tool,omitempty"`
	Key       string          `json:"key,omitempty"` // idempotency key, optional
	Events    int             `json:"events,omitempty"`
	Submitted time.Time       `json:"submitted,omitempty"`
	Status    string          `json:"status"`
	Time      time.Time       `json:"time"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Record identifies a job at accept time.
type Record struct {
	ID        string
	Tool      string
	Key       string // idempotency key, "" if the client sent none
	Events    int
	Submitted time.Time
}

// RecoveredJob is one job found in the spool by Recover.
type RecoveredJob struct {
	Record
	// Status is the job's last journaled status. Pending and running jobs
	// carry a Trace; terminal jobs carry Error/Result instead.
	Status   string
	Trace    *trace.Trace
	Started  time.Time
	Finished time.Time
	Error    string
	Result   json.RawMessage
}

// Journal persists job traces and lifecycle transitions under one spool
// directory. Methods are safe for concurrent use on distinct job IDs; the
// service serializes transitions for a single job by construction (a job
// is owned by one worker at a time).
type Journal struct {
	dir string
}

// Open creates the spool directory if needed and returns a Journal over
// it.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("journal: empty spool directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the spool directory path.
func (j *Journal) Dir() string { return j.dir }

func (j *Journal) tracePath(id string) string { return filepath.Join(j.dir, id+".trace") }
func (j *Journal) metaPath(id string) string  { return filepath.Join(j.dir, id+".meta") }

// Append journals a newly accepted job: the trace first, fsynced, then
// the initial pending meta entry, fsynced. If any step fails the partial
// files are removed so a failed accept leaves no spool residue, and the
// caller must reject the submission — the write-ahead contract is that a
// job is only acknowledged after Append returns nil.
func (j *Journal) Append(rec Record, tr *trace.Trace) error {
	if err := faultinject.Fire("journal.append"); err != nil {
		return err
	}
	if err := j.writeTrace(rec.ID, tr); err != nil {
		j.removeFiles(rec.ID)
		return err
	}
	first := Entry{
		ID: rec.ID, Tool: rec.Tool, Key: rec.Key, Events: rec.Events,
		Submitted: rec.Submitted, Status: StatusPending, Time: rec.Submitted,
	}
	if err := j.appendMeta(rec.ID, first); err != nil {
		j.removeFiles(rec.ID)
		return err
	}
	return nil
}

// Mark appends a lifecycle transition for the job. errMsg and result are
// only meaningful for the failed and done statuses respectively. A mark
// failure is not fatal to the job — the service logs it and continues —
// but a crash before a terminal mark means the job is re-run on recovery,
// which is the at-least-once side of the write-ahead design (idempotency
// keys make the rerun invisible to clients).
func (j *Journal) Mark(id, status, errMsg string, result json.RawMessage) error {
	if err := faultinject.Fire("journal.mark"); err != nil {
		return err
	}
	return j.appendMeta(id, Entry{
		Status: status, Time: time.Now(), Error: errMsg, Result: result,
	})
}

// Remove deletes the job's spool files (retention GC).
func (j *Journal) Remove(id string) error {
	var firstErr error
	for _, p := range []string{j.tracePath(id), j.metaPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Recover scans the spool directory and reconstructs every journaled job
// from its meta log. Jobs whose last status is pending or running are
// loaded with their traces (ready to re-enqueue); terminal jobs are
// returned as history. Jobs with unreadable meta or trace files are
// skipped and reported in the returned error list — recovery is best
// effort per job, never all-or-nothing. Results are sorted by ID so
// replay order is deterministic.
func (j *Journal) Recover() ([]RecoveredJob, []error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("journal: %w", err)}
	}
	var jobs []RecoveredJob
	var errs []error
	for _, de := range entries {
		name := de.Name()
		if !strings.HasSuffix(name, ".meta") {
			continue
		}
		id := strings.TrimSuffix(name, ".meta")
		rj, err := j.recoverOne(id)
		if err != nil {
			errs = append(errs, &JobError{ID: id, Err: err})
			continue
		}
		jobs = append(jobs, rj)
	}
	sort.Slice(jobs, func(a, b int) bool {
		// Numeric-aware so job-10 sorts after job-9.
		x, y := jobs[a].ID, jobs[b].ID
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		return x < y
	})
	return jobs, errs
}

// JobError is a recovery failure scoped to one spooled job, so callers
// can log the job id as a structured attribute. Its message matches the
// historical "journal: job <id>: <cause>" format.
type JobError struct {
	ID  string
	Err error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("journal: job %s: %v", e.ID, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// recoverOne reads one job's meta log and, for non-terminal jobs, its
// trace.
func (j *Journal) recoverOne(id string) (RecoveredJob, error) {
	f, err := os.Open(j.metaPath(id))
	if err != nil {
		return RecoveredJob{}, err
	}
	defer f.Close()

	var rj RecoveredJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		line++
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			// A torn final line (crash mid-append) is expected: keep the
			// state reconstructed so far. A torn first line is fatal.
			if line == 1 {
				return RecoveredJob{}, fmt.Errorf("meta line 1: %w", err)
			}
			break
		}
		if line == 1 {
			if e.ID != id {
				return RecoveredJob{}, fmt.Errorf("meta identity %q does not match file %q", e.ID, id)
			}
			rj.Record = Record{ID: e.ID, Tool: e.Tool, Key: e.Key, Events: e.Events, Submitted: e.Submitted}
		}
		rj.Status = e.Status
		switch e.Status {
		case StatusRunning:
			rj.Started = e.Time
		case StatusDone, StatusFailed:
			rj.Finished = e.Time
			rj.Error = e.Error
			rj.Result = e.Result
		}
	}
	if err := sc.Err(); err != nil {
		return RecoveredJob{}, err
	}
	if line == 0 {
		return RecoveredJob{}, errors.New("empty meta file")
	}
	if rj.Status == StatusPending || rj.Status == StatusRunning {
		tf, err := os.Open(j.tracePath(id))
		if err != nil {
			return RecoveredJob{}, err
		}
		defer tf.Close()
		tr, err := trace.Load(tf)
		if err != nil {
			return RecoveredJob{}, err
		}
		rj.Trace = tr
	}
	return rj, nil
}

// writeTrace writes and fsyncs the job's trace file.
func (j *Journal) writeTrace(id string, tr *trace.Trace) error {
	f, err := os.OpenFile(j.tracePath(id), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := tr.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := j.sync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// appendMeta appends one fsynced entry line to the job's meta log.
func (j *Journal) appendMeta(id string, e Entry) error {
	f, err := os.OpenFile(j.metaPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	b, err := json.Marshal(e)
	if err != nil {
		f.Close()
		return err
	}
	b = append(b, '\n')
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := j.sync(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sync fsyncs f, honoring the injected fsync-latency fault point.
func (j *Journal) sync(f *os.File) error {
	if err := faultinject.Fire("journal.fsync"); err != nil {
		return err
	}
	return f.Sync()
}

// removeFiles best-effort deletes a job's spool files after a failed
// Append.
func (j *Journal) removeFiles(id string) {
	_ = os.Remove(j.tracePath(id))
	_ = os.Remove(j.metaPath(id))
}

// Trace re-reads a journaled job's trace from the spool, for tools that
// want to re-analyze history.
func (j *Journal) Trace(id string) (*trace.Trace, error) {
	f, err := os.Open(j.tracePath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Load(f)
}
