package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tenant"
)

func TestTenantLogRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tl := j.Tenants()
	if err := tl.RecordLimits("alice", tenant.Limits{Weight: 2, Rate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tl.RecordLimits("bob", tenant.Limits{MaxJobs: 4}); err != nil {
		t.Fatal(err)
	}
	// Last write per tenant wins.
	if err := tl.RecordLimits("alice", tenant.Limits{Weight: 5, MaxStreams: 3}); err != nil {
		t.Fatal(err)
	}
	var stats RecoverStats
	got, err := tl.RecoverTenants(&stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d tenants, want 2", len(got))
	}
	if a := got["alice"]; a.Weight != 5 || a.MaxStreams != 3 || a.Rate != 0 {
		t.Fatalf("alice = %+v, want the last write only", a)
	}
	if b := got["bob"]; b.MaxJobs != 4 {
		t.Fatalf("bob = %+v", b)
	}
	if stats.TruncatedRecords != 0 {
		t.Fatalf("truncated = %d", stats.TruncatedRecords)
	}

	// Recovery compacted the log to one line per tenant; a second recovery
	// sees the same state.
	got2, err := j.Tenants().RecoverTenants(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || got2["alice"].Weight != 5 {
		t.Fatalf("post-compaction recovery = %+v", got2)
	}
}

func TestTenantLogMissingIsEmpty(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Tenants().RecoverTenants(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing log: %v %v", got, err)
	}
}

func TestTenantLogTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl := j.Tenants()
	if err := tl.RecordLimits("good", tenant.Limits{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "tenants.meta"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("c2 deadbeef {torn"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var stats RecoverStats
	got, err := tl.RecoverTenants(&stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["good"].Weight != 2 {
		t.Fatalf("recovered = %+v", got)
	}
	if stats.TruncatedRecords != 1 {
		t.Fatalf("truncated = %d, want 1", stats.TruncatedRecords)
	}
}

// TestSubsystemLogsNotJobs: the tenant and fleet logs live in the spool
// with the same .meta suffix as job lifecycle logs; job recovery must
// skip them instead of reporting a phantom corrupt job named "tenants"
// or "fleet".
func TestSubsystemLogsNotJobs(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Tenants().RecordLimits("alice", tenant.Limits{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Fleet().RecordToken("job-1", 7); err != nil {
		t.Fatal(err)
	}
	jobs, _, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 0 {
		t.Fatalf("recovered %d phantom jobs: %+v", len(jobs), jobs)
	}
}

func TestRecordPersistsTenantAndDeadline(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := sampleTrace(1)
	deadline := time.Now().Add(time.Hour).Truncate(time.Millisecond)
	rec := Record{
		ID: "job-1", Tool: "arbalest", Tenant: "alice",
		Events: len(tr.Events), Submitted: time.Now(), Deadline: deadline,
	}
	if err := j.Append(rec, tr); err != nil {
		t.Fatal(err)
	}
	jobs, _, errs := j.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs", len(jobs))
	}
	got := jobs[0]
	if got.Tenant != "alice" {
		t.Fatalf("tenant = %q", got.Tenant)
	}
	if !got.Deadline.Equal(deadline) {
		t.Fatalf("deadline = %v, want %v", got.Deadline, deadline)
	}
}
