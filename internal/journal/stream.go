// Stream session journaling: the write-ahead spool for live ingestion.
//
// A streaming session has no finished trace to write ahead — its events
// arrive over the wire for minutes or hours. The journal therefore spools
// the session's raw wire bytes as they are accepted:
//
//	<id>.sbytes  the CRC32C-framed encoding of every event applied so far
//	             (one header, then one frame per event), appended in apply
//	             order and fsynced before each checkpoint (so a checkpoint
//	             never claims events the spool cannot replay)
//	<id>.smeta   the session's lifecycle log, same CRC-framed line format
//	             as a job's .meta: first line "live" with identity,
//	             later lines done/failed/evicted transitions
//	<id>.ckpt    the session's latest analyzer checkpoint, shared with the
//	             job machinery (stream IDs and job IDs never collide)
//
// On startup RecoverStreams returns every journaled session; live ones
// carry their spooled bytes and latest checkpoint so the stream hub can
// rebuild the analyzer (restore the checkpoint, re-feed the spooled suffix)
// and leave the session open for the client to resume. The wire format's
// own CRC framing makes the spool self-verifying: a torn tail from a crash
// mid-append is detected by the push decoder, and the hub truncates it off
// with TruncateStreamBytes — the client re-sends from the last acknowledged
// event, exactly as it would after a network drop.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// Stream lifecycle statuses, extending the job set. A live session is one
// that may still receive events; evicted is terminal, recording that the
// server — not the client — ended the session (idle, slow consumer, or
// budget breach).
const (
	StatusLive    = "live"
	StatusEvicted = "evicted"
)

func (j *Journal) smetaPath(id string) string  { return filepath.Join(j.dir, id+".smeta") }
func (j *Journal) sbytesPath(id string) string { return filepath.Join(j.dir, id+".sbytes") }

// StreamWriter appends a session's accepted wire bytes to its spool file.
// Not safe for concurrent use; a session owns its writer.
type StreamWriter struct {
	j *Journal
	f *os.File
}

// Write appends p to the spool. The bytes are durable only after Sync.
func (w *StreamWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

// Sync fsyncs the spool, honoring the "journal.fsync" fault point. Called
// before every checkpoint write so checkpointed progress never outruns the
// durable byte stream.
func (w *StreamWriter) Sync() error { return w.j.sync(w.f) }

// Close closes the spool file. The session's bytes stay on disk until
// RemoveStream.
func (w *StreamWriter) Close() error { return w.f.Close() }

// Size returns the current spool length in bytes.
func (w *StreamWriter) Size() (int64, error) {
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// AppendStream journals a newly accepted streaming session: an empty spool
// file plus the initial "live" meta entry, fsynced. Returns the writer the
// session appends wire bytes through. If any step fails the partial files
// are removed and the session must be rejected. Honors the
// "journal.stream.append" fault point.
func (j *Journal) AppendStream(rec Record) (*StreamWriter, error) {
	if err := faultinject.Fire("journal.stream.append"); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.sbytesPath(rec.ID), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	first := Entry{
		ID: rec.ID, Tool: rec.Tool, Key: rec.Key, Tenant: rec.Tenant,
		Submitted: rec.Submitted, Status: StatusLive, Time: rec.Submitted,
	}
	if err := j.appendMetaFile(j.smetaPath(rec.ID), first); err != nil {
		f.Close()
		j.removeStreamFiles(rec.ID)
		return nil, err
	}
	return &StreamWriter{j: j, f: f}, nil
}

// OpenStreamBytes reopens a recovered session's spool for appending, after
// the hub has re-fed the existing bytes through the analyzer.
func (j *Journal) OpenStreamBytes(id string) (*StreamWriter, error) {
	f, err := os.OpenFile(j.sbytesPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &StreamWriter{j: j, f: f}, nil
}

// TruncateStreamBytes cuts the session's spool to size bytes — the repair
// for a torn tail (crash mid-append): the push decoder reports the offset
// of the last whole frame, and everything after it is unusable.
func (j *Journal) TruncateStreamBytes(id string, size int64) error {
	return os.Truncate(j.sbytesPath(id), size)
}

// MarkStream appends a lifecycle transition for the session. As with job
// marks, a failure is not fatal — but a crash before a terminal mark means
// the session is recovered live, which is what resume wants. Honors the
// "journal.stream.mark" fault point.
func (j *Journal) MarkStream(id, status, errMsg string, result json.RawMessage) error {
	if err := faultinject.Fire("journal.stream.mark"); err != nil {
		return err
	}
	return j.appendMetaFile(j.smetaPath(id), Entry{
		Status: status, Time: time.Now(), Error: errMsg, Result: result,
	})
}

// RemoveStream deletes the session's spool files (retention GC or abort).
func (j *Journal) RemoveStream(id string) error {
	var firstErr error
	for _, p := range []string{j.sbytesPath(id), j.smetaPath(id), j.ckptPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// removeStreamFiles best-effort deletes a session's spool files after a
// failed AppendStream.
func (j *Journal) removeStreamFiles(id string) {
	_ = os.Remove(j.sbytesPath(id))
	_ = os.Remove(j.smetaPath(id))
}

// RecoveredStream is one streaming session found in the spool by
// RecoverStreams.
type RecoveredStream struct {
	Record
	// Status is the session's last journaled status. Live sessions carry
	// Bytes (the spooled wire stream) and, when one was written, Checkpoint;
	// terminal sessions carry Error/Result instead.
	Status   string
	Bytes    []byte
	Finished time.Time
	Error    string
	Result   json.RawMessage
	// Checkpoint is the session's latest valid analyzer checkpoint, nil when
	// none was written or the file failed its CRC check (then the session
	// re-feeds its whole spool, which is always correct, just slower).
	Checkpoint *trace.Checkpoint
}

// RecoverStreams scans the spool for journaled streaming sessions, the
// stream-side twin of Recover. Live sessions are returned with their
// spooled bytes and latest valid checkpoint so the hub can rebuild them;
// terminal sessions are history. Per-session failures land in the error
// list, repaired corruption in RecoverStats. Results are sorted by ID.
func (j *Journal) RecoverStreams() ([]RecoveredStream, RecoverStats, []error) {
	var stats RecoverStats
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, stats, []error{fmt.Errorf("journal: %w", err)}
	}
	var streams []RecoveredStream
	var errs []error
	for _, de := range entries {
		name := de.Name()
		if !strings.HasSuffix(name, ".smeta") {
			continue
		}
		id := strings.TrimSuffix(name, ".smeta")
		rs, err := j.recoverOneStream(id, &stats)
		if err != nil {
			errs = append(errs, &JobError{ID: id, Err: err})
			continue
		}
		streams = append(streams, rs)
	}
	sort.Slice(streams, func(a, b int) bool {
		x, y := streams[a].ID, streams[b].ID
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		return x < y
	})
	return streams, stats, errs
}

// recoverOneStream reads one session's meta log and, for live sessions,
// its spooled bytes and latest checkpoint.
func (j *Journal) recoverOneStream(id string, stats *RecoverStats) (RecoveredStream, error) {
	entries, err := readMetaLog(j.smetaPath(id), stats)
	if err != nil {
		return RecoveredStream{}, err
	}
	var rs RecoveredStream
	for i, e := range entries {
		if i == 0 {
			if e.ID != id {
				return RecoveredStream{}, fmt.Errorf("meta identity %q does not match file %q", e.ID, id)
			}
			rs.Record = Record{ID: e.ID, Tool: e.Tool, Key: e.Key, Tenant: e.Tenant, Submitted: e.Submitted}
		}
		rs.Status = e.Status
		switch e.Status {
		case StatusDone, StatusFailed, StatusEvicted:
			rs.Finished = e.Time
			rs.Error = e.Error
			rs.Result = e.Result
		}
	}
	if rs.Status == StatusLive {
		data, err := os.ReadFile(j.sbytesPath(id))
		if err != nil {
			return RecoveredStream{}, err
		}
		rs.Bytes = data
		if ck, err := j.ReadCheckpoint(id); err == nil {
			rs.Checkpoint = ck
		} else if !errors.Is(err, os.ErrNotExist) {
			stats.DroppedCheckpoints++
			_ = os.Remove(j.ckptPath(id))
		}
	}
	return rs, nil
}
