package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestStreamAppendRecoverRoundTrip(t *testing.T) {
	j := mustOpen(t)
	rec := Record{ID: "stream-0", Tool: "arbalest", Submitted: time.Now()}
	w, err := j.AppendStream(rec)
	if err != nil {
		t.Fatal(err)
	}
	var spool bytes.Buffer
	if err := sampleTrace(3).SaveFramed(&spool); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(spool.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Size(); err != nil || n != int64(spool.Len()) {
		t.Fatalf("spool size %d (%v), want %d", n, err, spool.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	streams, _, errs := j.RecoverStreams()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(streams) != 1 {
		t.Fatalf("recovered %d streams, want 1", len(streams))
	}
	got := streams[0]
	if got.ID != "stream-0" || got.Tool != "arbalest" {
		t.Errorf("recovered record %+v, want %+v", got.Record, rec)
	}
	if got.Status != StatusLive {
		t.Errorf("status %q, want live", got.Status)
	}
	if !bytes.Equal(got.Bytes, spool.Bytes()) {
		t.Errorf("recovered %d spool bytes, want %d", len(got.Bytes), spool.Len())
	}
	// Jobs and streams do not see each other's records.
	if jobs, _, _ := j.Recover(); len(jobs) != 0 {
		t.Errorf("job recovery found %d records in a stream-only spool", len(jobs))
	}
}

func TestStreamTerminalMarks(t *testing.T) {
	j := mustOpen(t)
	for _, tc := range []struct {
		id, status string
	}{
		{"stream-0", StatusDone},
		{"stream-1", StatusFailed},
		{"stream-2", StatusEvicted},
	} {
		w, err := j.AppendStream(Record{ID: tc.id, Tool: "arbalest", Submitted: time.Now()})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		res := json.RawMessage(`{"events":9}`)
		if err := j.MarkStream(tc.id, tc.status, "why", res); err != nil {
			t.Fatal(err)
		}
	}
	streams, _, errs := j.RecoverStreams()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(streams) != 3 {
		t.Fatalf("recovered %d streams, want 3", len(streams))
	}
	for i, want := range []string{StatusDone, StatusFailed, StatusEvicted} {
		if streams[i].Status != want {
			t.Errorf("stream %d status %q, want %q", i, streams[i].Status, want)
		}
		if streams[i].Bytes != nil {
			t.Errorf("terminal stream %d still carries %d spool bytes", i, len(streams[i].Bytes))
		}
		if streams[i].Error != "why" {
			t.Errorf("stream %d error %q, want \"why\"", i, streams[i].Error)
		}
	}
}

func TestStreamCheckpointRoundTrip(t *testing.T) {
	j := mustOpen(t)
	w, err := j.AppendStream(Record{ID: "stream-0", Tool: "arbalest", Submitted: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	ck := &trace.Checkpoint{JobID: "stream-0", Tool: "arbalest", NextEvent: 4, Events: 4, State: json.RawMessage(`{"x":1}`)}
	if err := j.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	streams, _, errs := j.RecoverStreams()
	if len(errs) != 0 || len(streams) != 1 {
		t.Fatalf("recover: %d streams, errs %v", len(streams), errs)
	}
	if streams[0].Checkpoint == nil || streams[0].Checkpoint.NextEvent != 4 {
		t.Fatalf("recovered checkpoint %+v, want NextEvent 4", streams[0].Checkpoint)
	}
}

func TestStreamTornMetaTailTruncated(t *testing.T) {
	j := mustOpen(t)
	w, err := j.AppendStream(Record{ID: "stream-0", Tool: "arbalest", Submitted: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := j.MarkStream("stream-0", StatusDone, "", nil); err != nil {
		t.Fatal(err)
	}
	// Tear the terminal mark: the session must recover live again.
	path := j.smetaPath("stream-0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	streams, stats, errs := j.RecoverStreams()
	if len(errs) != 0 || len(streams) != 1 {
		t.Fatalf("recover: %d streams, errs %v", len(streams), errs)
	}
	if streams[0].Status != StatusLive {
		t.Errorf("status %q after torn terminal mark, want live", streams[0].Status)
	}
	if stats.TruncatedRecords != 1 {
		t.Errorf("TruncatedRecords %d, want 1", stats.TruncatedRecords)
	}
}

func TestStreamTruncateAndRemove(t *testing.T) {
	j := mustOpen(t)
	w, err := j.AppendStream(Record{ID: "stream-0", Tool: "arbalest", Submitted: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := j.TruncateStreamBytes("stream-0", 4); err != nil {
		t.Fatal(err)
	}
	streams, _, _ := j.RecoverStreams()
	if len(streams) != 1 || string(streams[0].Bytes) != "0123" {
		t.Fatalf("spool after truncate = %q, want \"0123\"", streams[0].Bytes)
	}
	if err := j.RemoveStream("stream-0"); err != nil {
		t.Fatal(err)
	}
	if streams, _, _ := j.RecoverStreams(); len(streams) != 0 {
		t.Fatalf("recovered %d streams after remove", len(streams))
	}
	if _, err := os.Stat(j.sbytesPath("stream-0")); !os.IsNotExist(err) {
		t.Errorf("sbytes survives RemoveStream: %v", err)
	}
}
