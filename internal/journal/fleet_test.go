package journal_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
)

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestFleetLogRecoverFoldsMaxTokens: recovery keeps the highest token ever
// issued per job and the deduplicated worker set.
func TestFleetLogRecoverFoldsMaxTokens(t *testing.T) {
	dir := t.TempDir()
	fl := openJournal(t, dir).Fleet()

	for _, rec := range []struct {
		job   string
		token uint64
	}{{"job-a", 1}, {"job-b", 7}, {"job-a", 2}, {"job-a", 3}} {
		if err := fl.RecordToken(rec.job, rec.token); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.RecordWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if err := fl.RecordWorker("w2"); err != nil {
		t.Fatal(err)
	}
	if err := fl.RecordWorker("w1"); err != nil {
		t.Fatal(err)
	}

	st, err := fl.RecoverFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tokens["job-a"] != 3 || st.Tokens["job-b"] != 7 || len(st.Tokens) != 2 {
		t.Fatalf("tokens = %v, want job-a:3 job-b:7", st.Tokens)
	}
	if len(st.Workers) != 2 || st.Workers[0] != "w1" || st.Workers[1] != "w2" {
		t.Fatalf("workers = %v, want [w1 w2]", st.Workers)
	}
}

// TestFleetLogMissingIsEmpty: a spool with no fleet log recovers to an
// empty state without error.
func TestFleetLogMissingIsEmpty(t *testing.T) {
	fl := openJournal(t, t.TempDir()).Fleet()
	st, err := fl.RecoverFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tokens) != 0 || len(st.Workers) != 0 {
		t.Fatalf("empty spool recovered %v / %v", st.Tokens, st.Workers)
	}
}

// TestFleetLogToleratesTornAndCorruptLines: a crash mid-append (torn
// trailing line) and bit rot (bad CRC) drop only the damaged lines, counted
// in RecoverStats, and recovery compacts the file so a second recovery is
// clean.
func TestFleetLogToleratesTornAndCorruptLines(t *testing.T) {
	dir := t.TempDir()
	fl := openJournal(t, dir).Fleet()
	if err := fl.RecordToken("job-a", 4); err != nil {
		t.Fatal(err)
	}
	if err := fl.RecordWorker("w1"); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "fleet.meta")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// One mid-file line with a wrong checksum, then a torn trailing line.
	if _, err := f.WriteString("c2 deadbeef {\"kind\":\"token\",\"job\":\"job-x\",\"token\":9}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("c2 0123ab"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var stats journal.RecoverStats
	st, err := fl.RecoverFleet(&stats)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tokens["job-a"] != 4 || len(st.Tokens) != 1 {
		t.Fatalf("tokens = %v, want only job-a:4 (corrupt line must not count)", st.Tokens)
	}
	if stats.TruncatedRecords != 2 {
		t.Fatalf("truncated records = %d, want 2", stats.TruncatedRecords)
	}

	// Compaction rewrote the log: recovering again is clean and identical.
	var stats2 journal.RecoverStats
	st2, err := fl.RecoverFleet(&stats2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TruncatedRecords != 0 {
		t.Fatalf("post-compaction recovery still dropped %d lines", stats2.TruncatedRecords)
	}
	if st2.Tokens["job-a"] != 4 || len(st2.Workers) != 1 || st2.Workers[0] != "w1" {
		t.Fatalf("post-compaction state = %v / %v", st2.Tokens, st2.Workers)
	}
}

// TestFleetLogAppendSurvivesAcrossOpens: tokens recorded by one journal
// life are visible to the next, the property coordinator fencing rests on.
func TestFleetLogAppendSurvivesAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	fl1 := openJournal(t, dir).Fleet()
	if err := fl1.RecordToken("job-a", 2); err != nil {
		t.Fatal(err)
	}

	fl2 := openJournal(t, dir).Fleet()
	st, err := fl2.RecoverFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tokens["job-a"] != 2 {
		t.Fatalf("tokens across lives = %v, want job-a:2", st.Tokens)
	}

	// The next life continues the sequence and recovery still folds max.
	if err := fl2.RecordToken("job-a", 3); err != nil {
		t.Fatal(err)
	}
	st2, err := fl2.RecoverFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tokens["job-a"] != 3 {
		t.Fatalf("tokens after continuation = %v, want job-a:3", st2.Tokens)
	}
}
