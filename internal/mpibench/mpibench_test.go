package mpibench

import (
	"strings"
	"testing"
)

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(all))
	}
	var buggy, clean int
	for _, b := range all {
		if b.Name == "" || b.Brief == "" || b.Body == nil {
			t.Errorf("incomplete benchmark %+v", b)
		}
		if b.Buggy {
			buggy++
		} else {
			clean++
		}
	}
	if buggy != 6 || clean != 6 {
		t.Errorf("buggy=%d clean=%d, want 6/6", buggy, clean)
	}
}

// TestBuggyPatternsDetected: every buggy pattern is reported with the
// expected kind.
func TestBuggyPatternsDetected(t *testing.T) {
	for _, b := range All() {
		if !b.Buggy {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res := RunBenchmark(b)
			if res.Err != nil {
				t.Fatalf("world error: %v", res.Err)
			}
			if !res.Detected {
				t.Fatalf("%s not detected", b.Name)
			}
			found := false
			for _, k := range res.Kinds {
				if k == b.Expect {
					found = true
				}
			}
			if !found {
				t.Errorf("%s kinds %v, want %v among them", b.Name, res.Kinds, b.Expect)
			}
		})
	}
}

// TestCleanPatternsSilent: no false positives on the correct patterns.
func TestCleanPatternsSilent(t *testing.T) {
	for _, b := range All() {
		if b.Buggy {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res := RunBenchmark(b)
			if res.Err != nil {
				t.Fatalf("world error: %v", res.Err)
			}
			if res.Detected {
				t.Errorf("%s false positive: kinds %v", b.Name, res.Kinds)
			}
		})
	}
}

// TestRunAllAndSummary: the suite-level harness.
func TestRunAllAndSummary(t *testing.T) {
	results := RunAll()
	if len(results) != len(All()) {
		t.Fatalf("%d results", len(results))
	}
	s := Summary(results)
	if !strings.Contains(s, "buggy detected 6/6") || !strings.Contains(s, "correct clean 6/6") {
		t.Errorf("summary = %q", s)
	}
}

// TestStability: run the suite several times — the simulated ranks are
// concurrent goroutines, and the verdicts must not depend on scheduling.
func TestStability(t *testing.T) {
	for round := 0; round < 5; round++ {
		for _, b := range All() {
			res := RunBenchmark(b)
			if res.Err != nil {
				t.Fatalf("round %d %s: %v", round, b.Name, res.Err)
			}
			if res.Detected != b.Buggy {
				t.Fatalf("round %d %s: detected=%t, want %t (kinds %v)",
					round, b.Name, res.Detected, b.Buggy, res.Kinds)
			}
		}
	}
}
