// Package mpibench is a micro-benchmark suite for the MPI one-sided
// consistency checker (internal/mpi) — the §VII-B counterpart of what the
// DRACC suite is for the OpenMP detector: a set of minimal correct and buggy
// one-sided communication patterns with known verdicts. The buggy patterns
// are the separate-memory-model pitfalls catalogued by Hoefler et al. (the
// paper's ref [34]): reading a window copy whose counterpart is newer, and
// updating both copies of a location in one synchronization epoch.
package mpibench

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/report"
)

// Benchmark is one two-rank one-sided program.
type Benchmark struct {
	// Name identifies the pattern.
	Name string
	// Buggy marks programs with a known consistency issue.
	Buggy bool
	// Expect is the report kind a buggy program must produce.
	Expect report.Kind
	// Brief describes the pattern.
	Brief string
	// Ranks is the world size (default 2).
	Ranks int
	// Body runs on every rank.
	Body func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf)
	// Elems sizes the window (default 4).
	Elems int
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns the suite sorted by name.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Result is one benchmark's outcome.
type Result struct {
	Benchmark *Benchmark
	Detected  bool
	Kinds     []report.Kind
	Err       error
}

// RunBenchmark executes b under a fresh world and checker.
func RunBenchmark(b *Benchmark) *Result {
	ranks := b.Ranks
	if ranks == 0 {
		ranks = 2
	}
	elems := b.Elems
	if elems == 0 {
		elems = 4
	}
	w := mpi.NewWorld(mpi.Config{Ranks: ranks})
	err := w.Run(func(r *mpi.Rank) error {
		buf := r.AllocF64(elems, "w")
		for i := 0; i < elems; i++ {
			r.Store(buf, i, float64(r.ID()+1))
		}
		win := r.WinCreate(buf)
		b.Body(r, win, buf)
		win.Free(r)
		return nil
	})
	return &Result{
		Benchmark: b,
		Detected:  w.Checker().Sink().Count() > 0,
		Kinds:     w.Checker().Sink().Kinds(),
		Err:       err,
	}
}

// RunAll executes the whole suite.
func RunAll() []*Result {
	out := make([]*Result, 0, len(registry))
	for _, b := range All() {
		out = append(out, RunBenchmark(b))
	}
	return out
}

func init() {
	// ---- correct patterns ----

	register(&Benchmark{
		Name:  "fenced-put",
		Brief: "put inside a fence epoch, target reads after the closing fence",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 0 {
				win.Put(r, 1, 0, []float64{42})
			}
			win.Fence(r)
			if r.ID() == 1 {
				_ = r.Load(buf, 0)
			}
			r.Barrier()
		},
	})

	register(&Benchmark{
		Name:  "fenced-get",
		Brief: "get inside a fence epoch after the owner's data was exposed",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 1 {
				_ = win.Get(r, 0, 0, 2)
			}
			win.Fence(r)
		},
	})

	register(&Benchmark{
		Name:  "accumulate-reduction",
		Brief: "both ranks accumulate into rank 0's window in one epoch (element-atomic)",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			win.Accumulate(r, 0, 0, []float64{1})
			win.Fence(r)
			if r.ID() == 0 {
				_ = r.Load(buf, 0)
			}
			r.Barrier()
		},
	})

	register(&Benchmark{
		Name:  "passive-lock-sync",
		Brief: "lock/put/unlock by the origin, Win_sync by the target before its read",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			if r.ID() == 0 {
				win.Lock(r, 1)
				win.Put(r, 1, 0, []float64{7})
				win.Unlock(r, 1)
			}
			r.Barrier()
			if r.ID() == 1 {
				win.Sync(r)
				_ = r.Load(buf, 0)
			}
			r.Barrier()
		},
	})

	register(&Benchmark{
		Name:  "disjoint-epoch-updates",
		Brief: "local store and remote put touch different words of one window in one epoch",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 0 {
				win.Put(r, 1, 0, []float64{5})
			}
			if r.ID() == 1 {
				r.Store(buf, 1, 6)
			}
			win.Fence(r)
			if r.ID() == 1 {
				_ = r.Load(buf, 0)
				_ = r.Load(buf, 1)
			}
			r.Barrier()
		},
	})

	register(&Benchmark{
		Name:  "pingpong",
		Brief: "alternating fenced exchanges over several rounds",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			for round := 0; round < 3; round++ {
				win.Fence(r)
				src := round % 2
				if r.ID() == src {
					win.Put(r, 1-src, 0, []float64{float64(round)})
				}
				win.Fence(r)
				if r.ID() == 1-src {
					_ = r.Load(buf, 0)
				}
				r.Barrier()
			}
		},
	})

	// ---- buggy patterns ----

	register(&Benchmark{
		Name: "missing-closing-fence", Buggy: true, Expect: report.USD,
		Brief: "target reads its private copy after a remote put with no closing fence",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 0 {
				win.Put(r, 1, 0, []float64{9})
			}
			r.Barrier() // time order only; no memory synchronization
			if r.ID() == 1 {
				_ = r.Load(buf, 0) // BUG: stale private copy
			}
			win.Fence(r)
		},
	})

	register(&Benchmark{
		Name: "missing-win-sync", Buggy: true, Expect: report.USD,
		Brief: "passive-target epoch completed by unlock, but the target never calls Win_sync",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			if r.ID() == 0 {
				win.Lock(r, 1)
				win.Put(r, 1, 0, []float64{9})
				win.Unlock(r, 1)
			}
			r.Barrier()
			if r.ID() == 1 {
				_ = r.Load(buf, 0) // BUG: no Win_sync
			}
			r.Barrier()
			if r.ID() == 1 {
				win.Sync(r) // clean up before teardown
			}
			r.Barrier()
		},
	})

	register(&Benchmark{
		Name: "stale-get", Buggy: true, Expect: report.USD,
		Brief: "origin gets the public copy after the owner's un-synchronized local store",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 1 {
				r.Store(buf, 0, 77)
			}
			r.Barrier()
			if r.ID() == 0 {
				_ = win.Get(r, 1, 0, 1) // BUG: public copy is stale
			}
			win.Fence(r)
		},
	})

	register(&Benchmark{
		Name: "same-epoch-conflict", Buggy: true, Expect: report.DataRace,
		Brief: "local store and remote put hit the same word in one epoch (undefined)",
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 0 {
				win.Put(r, 1, 0, []float64{5})
			}
			if r.ID() == 1 {
				r.Store(buf, 0, 6) // BUG: same word, same epoch
			}
			win.Fence(r)
		},
	})

	register(&Benchmark{
		Name: "get-uninitialized", Buggy: true, Expect: report.UUM,
		Brief: "get from a window whose owner never initialized the exposed memory",
		Ranks: 2, Elems: 4,
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			// Note: RunBenchmark initializes buf, so this pattern exposes a
			// SECOND, never-initialized buffer through a second window.
			fresh := r.AllocF64(4, "fresh")
			w2 := r.WinCreate(fresh)
			w2.Fence(r)
			if r.ID() == 0 {
				_ = w2.Get(r, 1, 0, 4) // BUG: never initialized
			}
			w2.Fence(r)
			w2.Free(r)
		},
	})

	register(&Benchmark{
		Name: "put-then-read-no-epoch-close", Buggy: true, Expect: report.USD,
		Brief: "three ranks: relay write consumed before the epoch closes",
		Ranks: 3,
		Body: func(r *mpi.Rank, win *mpi.Win, buf *mpi.Buf) {
			win.Fence(r)
			if r.ID() == 0 {
				win.Put(r, 2, 0, []float64{1})
			}
			r.Barrier()
			if r.ID() == 2 {
				_ = r.Load(buf, 0) // BUG: epoch still open
			}
			win.Fence(r)
		},
	})
}

// Summary renders pass/fail counts for the suite.
func Summary(results []*Result) string {
	var buggyDetected, buggyTotal, cleanOK, cleanTotal int
	for _, res := range results {
		if res.Benchmark.Buggy {
			buggyTotal++
			if res.Detected {
				buggyDetected++
			}
		} else {
			cleanTotal++
			if !res.Detected {
				cleanOK++
			}
		}
	}
	return fmt.Sprintf("buggy detected %d/%d, correct clean %d/%d",
		buggyDetected, buggyTotal, cleanOK, cleanTotal)
}
