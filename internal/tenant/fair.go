package tenant

// FairQueue is a weighted round-robin queue of items grouped by tenant.
// Each recharge cycle grants every active tenant credits equal to its
// weight; Pop walks the ring of active tenants one grant at a time, so a
// weight-2 tenant receives two slots per cycle interleaved with everyone
// else's — no tenant can starve another no matter how deep its backlog.
//
// FairQueue is NOT safe for concurrent use: callers (the service queue,
// the coordinator's pending table) already serialize access under their
// own mutex, and keeping the queue lock-free lets them compose operations
// (pop + shed + journal) atomically.
type FairQueue[T any] struct {
	queues  map[string][]T
	weights map[string]int
	credit  map[string]int
	ring    []string // active (non-empty) tenants, arrival order
	cursor  int
	size    int
}

// NewFairQueue returns an empty queue.
func NewFairQueue[T any]() *FairQueue[T] {
	return &FairQueue[T]{
		queues:  make(map[string][]T),
		weights: make(map[string]int),
		credit:  make(map[string]int),
	}
}

// Push appends v to tenant's backlog. weight (clamped to >= 1) updates the
// tenant's share for subsequent recharge cycles, so live weight tuning
// applies to work already queued.
func (q *FairQueue[T]) Push(tenant string, weight int, v T) {
	q.pushDir(tenant, weight, v, false)
}

// PushFront prepends v to tenant's backlog — the coordinator reschedules an
// expired lease's job at the head of its tenant's line, preserving the old
// "expired jobs run next" behavior without letting them jump other tenants.
func (q *FairQueue[T]) PushFront(tenant string, weight int, v T) {
	q.pushDir(tenant, weight, v, true)
}

func (q *FairQueue[T]) pushDir(tenant string, weight int, v T, front bool) {
	if weight < 1 {
		weight = 1
	}
	q.weights[tenant] = weight
	buf, active := q.queues[tenant]
	if front {
		q.queues[tenant] = append([]T{v}, buf...)
	} else {
		q.queues[tenant] = append(buf, v)
	}
	if !active || len(buf) == 0 {
		q.activate(tenant)
	}
	q.size++
}

// activate adds tenant to the ring if absent, with a fresh credit grant.
func (q *FairQueue[T]) activate(tenant string) {
	for _, t := range q.ring {
		if t == tenant {
			return
		}
	}
	q.ring = append(q.ring, tenant)
	q.credit[tenant] = q.weights[tenant]
}

// Pop removes and returns the next item under weighted round-robin, along
// with the tenant it belonged to. ok is false when the queue is empty.
func (q *FairQueue[T]) Pop() (tenant string, v T, ok bool) {
	var zero T
	if q.size == 0 {
		return "", zero, false
	}
	for pass := 0; pass < 2; pass++ {
		n := len(q.ring)
		for i := 0; i < n; i++ {
			idx := (q.cursor + i) % n
			t := q.ring[idx]
			if len(q.queues[t]) == 0 || q.credit[t] <= 0 {
				continue
			}
			q.credit[t]--
			v := q.queues[t][0]
			q.queues[t] = q.queues[t][1:]
			q.size--
			q.cursor = (idx + 1) % n
			if len(q.queues[t]) == 0 {
				q.deactivate(t)
			}
			return t, v, true
		}
		// Every backlogged tenant is out of credit: recharge by weight.
		for _, t := range q.ring {
			q.credit[t] = q.weights[t]
		}
	}
	return "", zero, false
}

// deactivate removes tenant from the ring (its backlog emptied), keeping
// cursor pointing at the same next tenant.
func (q *FairQueue[T]) deactivate(tenant string) {
	for i, t := range q.ring {
		if t != tenant {
			continue
		}
		q.ring = append(q.ring[:i], q.ring[i+1:]...)
		delete(q.credit, tenant)
		delete(q.queues, tenant)
		if len(q.ring) == 0 {
			q.cursor = 0
		} else {
			if i < q.cursor {
				q.cursor--
			}
			q.cursor %= len(q.ring)
		}
		return
	}
}

// PopNewest removes and returns tenant's most recently queued item — the
// shed order: newest work of the heaviest tenant first, so long-queued
// (oldest) work keeps its sunk investment.
func (q *FairQueue[T]) PopNewest(tenant string) (v T, ok bool) {
	var zero T
	buf := q.queues[tenant]
	if len(buf) == 0 {
		return zero, false
	}
	v = buf[len(buf)-1]
	q.queues[tenant] = buf[:len(buf)-1]
	q.size--
	if len(q.queues[tenant]) == 0 {
		q.deactivate(tenant)
	}
	return v, true
}

// Heaviest returns the tenant with the deepest backlog (ties broken by ring
// order) and its depth; ok is false when the queue is empty.
func (q *FairQueue[T]) Heaviest() (tenant string, depth int, ok bool) {
	for _, t := range q.ring {
		if n := len(q.queues[t]); n > depth {
			tenant, depth, ok = t, n, true
		}
	}
	return tenant, depth, ok
}

// Len returns the total queued items.
func (q *FairQueue[T]) Len() int { return q.size }

// TenantLen returns one tenant's backlog depth.
func (q *FairQueue[T]) TenantLen(tenant string) int { return len(q.queues[tenant]) }

// Tenants returns the active (backlogged) tenants in ring order.
func (q *FairQueue[T]) Tenants() []string {
	return append([]string(nil), q.ring...)
}

// Drain removes and returns every queued item in weighted round-robin
// order — shutdown and inline-drain paths use it to empty the queue.
func (q *FairQueue[T]) Drain() []T {
	out := make([]T, 0, q.size)
	for {
		_, v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
