package tenant

import (
	"testing"
	"time"
)

func TestFairQueueWeightedShares(t *testing.T) {
	q := NewFairQueue[int]()
	// heavy has weight 2, light weight 1; both deeply backlogged.
	for i := 0; i < 30; i++ {
		q.Push("heavy", 2, i)
		q.Push("light", 1, 100+i)
	}
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		ten, _, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		counts[ten]++
	}
	// 30 grants over cycles of 3 (2 heavy + 1 light) => 20/10.
	if counts["heavy"] != 20 || counts["light"] != 10 {
		t.Fatalf("shares = %v, want heavy=20 light=10", counts)
	}
}

func TestFairQueueNoStarvation(t *testing.T) {
	q := NewFairQueue[int]()
	for i := 0; i < 1000; i++ {
		q.Push("flood", 1, i)
	}
	q.Push("victim", 1, -1)
	// The victim must be served within one full cycle.
	for i := 0; i < 2; i++ {
		ten, v, ok := q.Pop()
		if !ok {
			t.Fatal("unexpected empty")
		}
		if ten == "victim" {
			if v != -1 {
				t.Fatalf("victim item = %d", v)
			}
			return
		}
	}
	t.Fatal("victim starved past one round-robin cycle")
}

func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue[int]()
	for i := 0; i < 5; i++ {
		q.Push("a", 1, i)
	}
	for want := 0; want < 5; want++ {
		_, v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestFairQueuePushFront(t *testing.T) {
	q := NewFairQueue[string]()
	q.Push("a", 1, "second")
	q.PushFront("a", 1, "first")
	_, v, _ := q.Pop()
	if v != "first" {
		t.Fatalf("pop = %q, want the PushFront item", v)
	}
}

func TestFairQueuePopNewestAndHeaviest(t *testing.T) {
	q := NewFairQueue[int]()
	q.Push("small", 1, 1)
	for i := 0; i < 4; i++ {
		q.Push("big", 1, i)
	}
	ten, depth, ok := q.Heaviest()
	if !ok || ten != "big" || depth != 4 {
		t.Fatalf("heaviest = %s/%d/%v, want big/4", ten, depth, ok)
	}
	v, ok := q.PopNewest("big")
	if !ok || v != 3 {
		t.Fatalf("PopNewest = %d,%v want 3", v, ok)
	}
	if q.Len() != 4 || q.TenantLen("big") != 3 {
		t.Fatalf("len = %d/%d", q.Len(), q.TenantLen("big"))
	}
	// Draining a tenant via PopNewest deactivates it.
	for i := 0; i < 3; i++ {
		if _, ok := q.PopNewest("big"); !ok {
			t.Fatalf("PopNewest %d failed", i)
		}
	}
	if _, ok := q.PopNewest("big"); ok {
		t.Fatal("PopNewest on empty tenant should fail")
	}
	ten, v2, ok := q.Pop()
	if !ok || ten != "small" || v2 != 1 {
		t.Fatalf("final pop = %s/%d/%v", ten, v2, ok)
	}
}

func TestFairQueueDrain(t *testing.T) {
	q := NewFairQueue[int]()
	for i := 0; i < 3; i++ {
		q.Push("a", 1, i)
		q.Push("b", 1, 10+i)
	}
	got := q.Drain()
	if len(got) != 6 || q.Len() != 0 {
		t.Fatalf("drain = %v (len %d)", got, q.Len())
	}
}

func TestFairQueueDeactivateKeepsCursorSane(t *testing.T) {
	q := NewFairQueue[int]()
	// Interleave pushes and pops across tenants that come and go, checking
	// every item is eventually served exactly once.
	seen := map[int]bool{}
	total := 0
	for round := 0; round < 10; round++ {
		for ti := 0; ti < 4; ti++ {
			name := string(rune('a' + ti))
			q.Push(name, ti+1, round*100+ti)
			total++
		}
		if round%2 == 1 {
			for i := 0; i < 3; i++ {
				if _, v, ok := q.Pop(); ok {
					if seen[v] {
						t.Fatalf("item %d served twice", v)
					}
					seen[v] = true
				}
			}
		}
	}
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("item %d served twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("served %d items, pushed %d", len(seen), total)
	}
}

func TestCoDelShedsUnderSustainedDelay(t *testing.T) {
	c := &CoDel{Target: 100 * time.Millisecond, Interval: time.Second}
	now := time.Unix(1700000000, 0)
	// Below target: never sheds.
	for i := 0; i < 100; i++ {
		if c.OnDequeue(now, 50*time.Millisecond) {
			t.Fatal("shed below target")
		}
		now = now.Add(10 * time.Millisecond)
	}
	// Above target but within the first interval: still no shed.
	if c.OnDequeue(now, 200*time.Millisecond) {
		t.Fatal("shed before interval elapsed")
	}
	sheds := 0
	for i := 0; i < 300; i++ {
		now = now.Add(10 * time.Millisecond)
		if c.OnDequeue(now, 200*time.Millisecond) {
			sheds++
		}
	}
	if sheds < 2 {
		t.Fatalf("sheds = %d, want >= 2 under 3s of sustained overload", sheds)
	}
	if !c.Dropping() {
		t.Fatal("controller should be in dropping state")
	}
	// Recovery: one below-target observation exits the dropping state.
	if c.OnDequeue(now, 10*time.Millisecond) {
		t.Fatal("shed on recovery observation")
	}
	if c.Dropping() {
		t.Fatal("controller should have left dropping state")
	}
}

func TestCoDelControlLawAccelerates(t *testing.T) {
	c := &CoDel{Target: 10 * time.Millisecond, Interval: time.Second}
	now := time.Unix(1700000000, 0)
	c.OnDequeue(now, 20*time.Millisecond) // arm
	var shedTimes []time.Time
	for i := 0; i < 4000 && len(shedTimes) < 4; i++ {
		now = now.Add(time.Millisecond)
		if c.OnDequeue(now, 20*time.Millisecond) {
			shedTimes = append(shedTimes, now)
		}
	}
	if len(shedTimes) < 4 {
		t.Fatalf("only %d sheds observed", len(shedTimes))
	}
	gap1 := shedTimes[1].Sub(shedTimes[0])
	gap3 := shedTimes[3].Sub(shedTimes[2])
	if gap3 >= gap1 {
		t.Fatalf("shed spacing must shrink: gap1=%v gap3=%v", gap1, gap3)
	}
}

func TestCoDelDisabled(t *testing.T) {
	var c CoDel
	now := time.Unix(1700000000, 0)
	for i := 0; i < 100; i++ {
		now = now.Add(time.Second)
		if c.OnDequeue(now, time.Hour) {
			t.Fatal("zero-value CoDel must never shed")
		}
	}
}
