// Package tenant is the multi-tenant isolation layer: a registry of named
// tenants, each with a token-bucket submission rate limit and concurrent
// job/stream/byte quotas, plus the weighted fair queue (fair.go) that
// replaces FIFO dispatch in the service and the coordinator, and the
// CoDel-style sojourn controller (codel.go) that sheds the newest work of
// the heaviest tenant when the queue delay stays above target.
//
// Identity is a caller-supplied string (the X-Arbalest-Tenant header or the
// client's -tenant flag); an empty name maps to DefaultName. Tenants are
// created on first use with the registry's default limits, so an unknown
// tenant is never rejected — it is merely subject to the defaults. To bound
// the registry against hostile identity floods, at most MaxTenants distinct
// names are tracked; past the cap new names collapse into the shared
// OverflowName tenant, mirroring the metric-cardinality cap in telemetry.
//
// The package depends only on the standard library, so every layer —
// service, stream, dist, journal — can import it without cycles.
package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultName is the tenant an unidentified request is attributed to.
const DefaultName = "default"

// Header is the HTTP request header carrying the caller's tenant identity.
const Header = "X-Arbalest-Tenant"

// DeadlineHeader carries the client's completion deadline: either a Go
// duration relative to receipt ("30s") or an absolute RFC 3339 timestamp.
const DeadlineHeader = "X-Arbalest-Deadline"

// OverflowName is the shared tenant that absorbs identities past the
// registry cap, so a flood of fabricated names cannot grow state without
// bound (they all contend on one bucket, which is the point).
const OverflowName = "_overflow"

// MaxName bounds a tenant identity's length; longer names are truncated
// before lookup so an adversarial header cannot bloat keys or metric labels.
const MaxName = 64

// Limits are one tenant's isolation knobs. The zero value of any field
// means "unlimited" (and weight 0 means the default weight 1), so the zero
// Limits is a fully open tenant — backward compatible with the
// single-tenant daemon.
type Limits struct {
	// Weight is the tenant's share of weighted-fair dispatch: a tenant
	// with weight 2 is granted twice the queue slots and coordinator
	// leases per round-robin cycle as a tenant with weight 1. Values < 1
	// are treated as 1.
	Weight int `json:"weight,omitempty"`
	// Rate is the sustained admission rate in requests per second across
	// job submissions and stream opens, enforced by a token bucket.
	// <= 0 disables rate limiting.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity — how many requests may arrive back to
	// back before the rate applies. <= 0 defaults to max(Rate, 1).
	Burst float64 `json:"burst,omitempty"`
	// MaxJobs caps the tenant's concurrently live (queued or running)
	// analysis jobs. <= 0 is unlimited.
	MaxJobs int `json:"maxJobs,omitempty"`
	// MaxStreams caps the tenant's concurrently live streaming sessions.
	// <= 0 is unlimited.
	MaxStreams int `json:"maxStreams,omitempty"`
	// MaxBytes caps the tenant's in-flight bytes (uploaded trace bodies of
	// live jobs plus spooled stream bytes). <= 0 is unlimited.
	MaxBytes int64 `json:"maxBytes,omitempty"`
}

// weight returns the effective WFQ weight (>= 1).
func (l Limits) weight() int {
	if l.Weight < 1 {
		return 1
	}
	return l.Weight
}

// burst returns the effective bucket capacity.
func (l Limits) burst() float64 {
	if l.Burst > 0 {
		return l.Burst
	}
	return math.Max(l.Rate, 1)
}

// Quota errors. All map to HTTP 429 at the service boundary; ErrThrottled
// additionally carries a Retry-After hint via ThrottledError.
var (
	// ErrThrottled marks a request rejected by the token bucket.
	ErrThrottled = errors.New("tenant: rate limit exceeded")
	// ErrJobQuota marks a submission over the concurrent-job quota.
	ErrJobQuota = errors.New("tenant: concurrent-job quota exceeded")
	// ErrStreamQuota marks a stream open over the concurrent-stream quota.
	ErrStreamQuota = errors.New("tenant: concurrent-stream quota exceeded")
	// ErrByteQuota marks a request over the in-flight byte quota.
	ErrByteQuota = errors.New("tenant: in-flight byte quota exceeded")
)

// ThrottledError wraps ErrThrottled with the earliest useful retry time,
// surfaced to clients as the 429 Retry-After header.
type ThrottledError struct {
	// Tenant is the throttled identity.
	Tenant string
	// RetryAfter is how long until the bucket refills one token.
	RetryAfter time.Duration
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("tenant %q: rate limit exceeded, retry in %s", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrThrottled) work.
func (e *ThrottledError) Unwrap() error { return ErrThrottled }

// Tenant is one identity's live state: its limits, token bucket, and quota
// occupancy. Obtain via Registry.Get; all methods are safe for concurrent
// use.
type Tenant struct {
	name string
	now  func() time.Time

	mu      sync.Mutex
	lim     Limits
	tokens  float64
	refill  time.Time
	jobs    int
	streams int
	bytes   int64
}

// Name returns the tenant's identity.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's effective WFQ weight (>= 1).
func (t *Tenant) Weight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lim.weight()
}

// Limits returns the tenant's current limits.
func (t *Tenant) Limits() Limits {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lim
}

// setLimits swaps the limits live. The bucket is clamped to the new burst
// so shrinking a quota takes effect immediately.
func (t *Tenant) setLimits(lim Limits) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lim = lim
	if b := lim.burst(); t.tokens > b {
		t.tokens = b
	}
}

// refillLocked advances the token bucket to now.
func (t *Tenant) refillLocked(now time.Time) {
	if t.lim.Rate <= 0 {
		return
	}
	if t.refill.IsZero() {
		t.refill = now
		t.tokens = t.lim.burst()
		return
	}
	if dt := now.Sub(t.refill); dt > 0 {
		t.tokens = math.Min(t.lim.burst(), t.tokens+t.lim.Rate*dt.Seconds())
		t.refill = now
	}
}

// Admit spends one token from the rate limiter. It returns nil when the
// request may proceed, or a *ThrottledError (wrapping ErrThrottled) whose
// RetryAfter says when a token will be available.
func (t *Tenant) Admit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lim.Rate <= 0 {
		return nil
	}
	now := t.now()
	t.refillLocked(now)
	if t.tokens >= 1 {
		t.tokens--
		return nil
	}
	wait := time.Duration((1 - t.tokens) / t.lim.Rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return &ThrottledError{Tenant: t.name, RetryAfter: wait}
}

// AcquireJob reserves one concurrent-job slot and nbytes of the byte quota,
// atomically — on failure nothing is held. Pair with ReleaseJob(nbytes)
// when the job reaches a terminal state.
func (t *Tenant) AcquireJob(nbytes int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lim.MaxJobs > 0 && t.jobs >= t.lim.MaxJobs {
		return fmt.Errorf("tenant %q: %w (%d live)", t.name, ErrJobQuota, t.jobs)
	}
	if t.lim.MaxBytes > 0 && t.bytes+nbytes > t.lim.MaxBytes {
		return fmt.Errorf("tenant %q: %w (%d + %d > %d)", t.name, ErrByteQuota, t.bytes, nbytes, t.lim.MaxBytes)
	}
	t.jobs++
	t.bytes += nbytes
	return nil
}

// Adopt charges a job slot and nbytes without enforcing quotas. Recovery
// re-attributes journaled jobs through it: an accepted job must never be
// dropped at restart, even if the tenant's quota shrank in the meantime —
// the occupancy is simply reported over quota until those jobs finish.
func (t *Tenant) Adopt(nbytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs++
	t.bytes += nbytes
}

// AdoptStream charges a stream slot and nbytes without enforcing quotas —
// the stream counterpart of Adopt. Recovery re-attributes journaled live
// sessions through it: a session already admitted must never be dropped at
// restart, even if the tenant's quota shrank in the meantime.
func (t *Tenant) AdoptStream(nbytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.streams++
	t.bytes += nbytes
}

// ReleaseJob returns a job slot and its reserved bytes.
func (t *Tenant) ReleaseJob(nbytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jobs > 0 {
		t.jobs--
	}
	t.bytes -= nbytes
	if t.bytes < 0 {
		t.bytes = 0
	}
}

// AcquireStream reserves one concurrent-stream slot. Pair with
// ReleaseStream when the session leaves the live set.
func (t *Tenant) AcquireStream() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lim.MaxStreams > 0 && t.streams >= t.lim.MaxStreams {
		return fmt.Errorf("tenant %q: %w (%d live)", t.name, ErrStreamQuota, t.streams)
	}
	t.streams++
	return nil
}

// ReleaseStream returns a stream slot.
func (t *Tenant) ReleaseStream() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.streams > 0 {
		t.streams--
	}
}

// ReserveBytes charges n in-flight bytes against the byte quota (stream
// ingest paths call this incrementally as chunks arrive).
func (t *Tenant) ReserveBytes(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lim.MaxBytes > 0 && t.bytes+n > t.lim.MaxBytes {
		return fmt.Errorf("tenant %q: %w (%d + %d > %d)", t.name, ErrByteQuota, t.bytes, n, t.lim.MaxBytes)
	}
	t.bytes += n
	return nil
}

// ReleaseBytes returns n in-flight bytes.
func (t *Tenant) ReleaseBytes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bytes -= n
	if t.bytes < 0 {
		t.bytes = 0
	}
}

// Usage is a point-in-time snapshot of one tenant's occupancy, rendered in
// /readyz detail and the tenants admin endpoint.
type Usage struct {
	Name    string `json:"name"`
	Weight  int    `json:"weight"`
	Jobs    int    `json:"jobs"`
	Streams int    `json:"streams"`
	Bytes   int64  `json:"bytes"`
	// Saturation is the max of the tenant's quota-occupancy ratios in
	// [0, 1]; 0 for a tenant with no finite quotas.
	Saturation float64 `json:"saturation"`
	Limits     Limits  `json:"limits"`
}

// Usage snapshots the tenant.
func (t *Tenant) Usage() Usage {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := Usage{
		Name: t.name, Weight: t.lim.weight(),
		Jobs: t.jobs, Streams: t.streams, Bytes: t.bytes, Limits: t.lim,
	}
	sat := func(used, limit float64) {
		if limit > 0 {
			if r := used / limit; r > u.Saturation {
				u.Saturation = r
			}
		}
	}
	sat(float64(t.jobs), float64(t.lim.MaxJobs))
	sat(float64(t.streams), float64(t.lim.MaxStreams))
	sat(float64(t.bytes), float64(t.lim.MaxBytes))
	if u.Saturation > 1 {
		u.Saturation = 1
	}
	return u
}

// Registry is the tenant table. The zero value is not usable; create with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	now      func() time.Time
	defaults Limits
	max      int
	tenants  map[string]*Tenant
	onChange func(name string, lim Limits)
}

// MaxTenants is the default cap on distinct tracked identities.
const MaxTenants = 1024

// NewRegistry returns a registry whose unknown tenants start with defaults.
func NewRegistry(defaults Limits) *Registry {
	return &Registry{
		now:      time.Now,
		defaults: defaults,
		max:      MaxTenants,
		tenants:  make(map[string]*Tenant),
	}
}

// SetClock injects a time source (tests).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
	for _, t := range r.tenants {
		t.now = now
	}
}

// OnChange registers a hook fired (outside the registry lock) whenever a
// tenant's limits are set explicitly — the journal's durability seam.
func (r *Registry) OnChange(fn func(name string, lim Limits)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onChange = fn
}

// Canonical normalizes a caller-supplied identity: trimmed, truncated to
// MaxName, empty mapped to DefaultName.
func Canonical(name string) string {
	name = strings.TrimSpace(name)
	if name == "" {
		return DefaultName
	}
	if len(name) > MaxName {
		name = name[:MaxName]
	}
	return name
}

// Get returns the tenant for name, creating it with the default limits on
// first use. Past the registry cap, unseen names share OverflowName.
func (r *Registry) Get(name string) *Tenant {
	name = Canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(name)
}

func (r *Registry) getLocked(name string) *Tenant {
	if t, ok := r.tenants[name]; ok {
		return t
	}
	if len(r.tenants) >= r.max && name != OverflowName {
		return r.getLocked(OverflowName)
	}
	t := &Tenant{name: name, now: r.now, lim: r.defaults}
	r.tenants[name] = t
	return t
}

// Lookup returns the tenant only if it already exists.
func (r *Registry) Lookup(name string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[Canonical(name)]
	return t, ok
}

// Set creates or updates a tenant with explicit limits and fires the
// OnChange hook (use Apply for replaying journaled limits at recovery).
func (r *Registry) Set(name string, lim Limits) *Tenant {
	t, hook := r.apply(name, lim)
	if hook != nil {
		hook(t.name, lim)
	}
	return t
}

// Apply is Set without the OnChange hook — recovery replays journaled
// limits through it so they are not re-journaled.
func (r *Registry) Apply(name string, lim Limits) *Tenant {
	t, _ := r.apply(name, lim)
	return t
}

func (r *Registry) apply(name string, lim Limits) (*Tenant, func(string, Limits)) {
	name = Canonical(name)
	r.mu.Lock()
	t := r.getLocked(name)
	hook := r.onChange
	r.mu.Unlock()
	t.setLimits(lim)
	return t, hook
}

// Defaults returns the limits unknown tenants start with.
func (r *Registry) Defaults() Limits {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.defaults
}

// Snapshot returns every tracked tenant's usage, sorted by name.
func (r *Registry) Snapshot() []Usage {
	r.mu.Lock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	out := make([]Usage, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Usage())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseDeadline parses a DeadlineHeader value: a Go duration is taken
// relative to now, otherwise the value must be an absolute RFC 3339
// timestamp. Empty input is no deadline (zero time, nil error).
func ParseDeadline(v string, now time.Time) (time.Time, error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		if d <= 0 {
			return time.Time{}, fmt.Errorf("tenant: deadline duration %q must be positive", v)
		}
		return now.Add(d), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("tenant: deadline %q is neither a duration nor RFC 3339", v)
	}
	return t, nil
}

// ParseSpec parses the -tenants flag grammar: semicolon-separated tenant
// clauses, each "name:key=value,key=value". Keys are weight, rate, burst,
// jobs, streams, bytes. Example:
//
//	alice:weight=4,rate=50,jobs=16;bob:weight=1,rate=5,burst=10,bytes=67108864
func ParseSpec(spec string) (map[string]Limits, error) {
	out := map[string]Limits{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, ":")
		name = Canonical(name)
		if !ok || strings.TrimSpace(rest) == "" {
			return nil, fmt.Errorf("tenant: spec clause %q needs name:key=value[,...]", clause)
		}
		var lim Limits
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("tenant: spec entry %q is not key=value", kv)
			}
			var err error
			switch k {
			case "weight":
				lim.Weight, err = strconv.Atoi(v)
			case "rate":
				lim.Rate, err = strconv.ParseFloat(v, 64)
			case "burst":
				lim.Burst, err = strconv.ParseFloat(v, 64)
			case "jobs":
				lim.MaxJobs, err = strconv.Atoi(v)
			case "streams":
				lim.MaxStreams, err = strconv.Atoi(v)
			case "bytes":
				lim.MaxBytes, err = strconv.ParseInt(v, 10, 64)
			default:
				return nil, fmt.Errorf("tenant: spec key %q unknown (weight, rate, burst, jobs, streams, bytes)", k)
			}
			if err != nil {
				return nil, fmt.Errorf("tenant: spec value %q for %s: %v", v, k, err)
			}
		}
		out[name] = lim
	}
	return out, nil
}
