package tenant

import (
	"math"
	"time"
)

// CoDel is a CoDel-style (Controlled Delay, Nichols & Jacobson) queue-delay
// controller adapted to job shedding. The classic algorithm watches the
// sojourn time of dequeued packets; when it stays above Target for a full
// Interval the controller enters a dropping state and signals drops at a
// rate that increases with the square root of the drop count (the control
// law that drives delay back to Target with minimal loss). We reuse the
// state machine verbatim but re-aim the verdict: instead of dropping the
// packet being dequeued (which here would be the *oldest* job — the one
// with the most sunk queue time), the caller sheds the newest work of the
// heaviest tenant, so overload cost lands on whoever is flooding.
//
// CoDel is not safe for concurrent use; the service queue lock serializes
// OnDequeue calls. The zero value with Target == 0 is disabled.
type CoDel struct {
	// Target is the acceptable standing sojourn time; 0 disables shedding.
	Target time.Duration
	// Interval is how long sojourn must stay above Target before the first
	// shed, and the base spacing of the shed schedule. 0 defaults to
	// 10 x Target.
	Interval time.Duration

	firstAbove time.Time // when sojourn first exceeded Target (zero: below)
	dropping   bool      // in the shedding state
	dropNext   time.Time // next scheduled shed while dropping
	count      int       // sheds this dropping episode (control-law input)
	lastCount  int       // count when the previous episode ended
}

// interval returns the effective interval.
func (c *CoDel) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 10 * c.Target
}

// OnDequeue feeds one dequeue observation (the sojourn time of the item
// just popped) into the controller and reports whether the caller should
// shed one queued item now.
func (c *CoDel) OnDequeue(now time.Time, sojourn time.Duration) bool {
	if c.Target <= 0 {
		return false
	}
	if sojourn < c.Target {
		// Back under target: leave the dropping state, remember count so a
		// quickly returning overload resumes near its old shed rate.
		c.firstAbove = time.Time{}
		if c.dropping {
			c.dropping = false
			c.lastCount = c.count
		}
		return false
	}
	if c.firstAbove.IsZero() {
		// First observation above target: arm the interval timer.
		c.firstAbove = now.Add(c.interval())
		return false
	}
	if now.Before(c.firstAbove) {
		return false
	}
	if !c.dropping {
		c.dropping = true
		// Resume the control law near the previous episode's rate if it
		// ended recently enough to still be the same overload.
		if c.lastCount > 2 {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.dropNext = now
	}
	if now.Before(c.dropNext) {
		return false
	}
	c.count++
	c.dropNext = now.Add(time.Duration(float64(c.interval()) / math.Sqrt(float64(c.count))))
	return true
}

// Dropping reports whether the controller is in its shedding state.
func (c *CoDel) Dropping() bool { return c.dropping }
