package tenant

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTokenBucketThrottlesAndRefills(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(Limits{Rate: 2, Burst: 2})
	r.SetClock(clk.now)
	ten := r.Get("alice")

	if err := ten.Admit(); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := ten.Admit(); err != nil {
		t.Fatalf("second admit (burst): %v", err)
	}
	err := ten.Admit()
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("third admit: want ErrThrottled, got %v", err)
	}
	var te *ThrottledError
	if !errors.As(err, &te) || te.RetryAfter <= 0 {
		t.Fatalf("want ThrottledError with positive RetryAfter, got %#v", err)
	}
	// At 2 req/s one token takes 500ms.
	if te.RetryAfter > 600*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want <= ~500ms", te.RetryAfter)
	}
	clk.advance(500 * time.Millisecond)
	if err := ten.Admit(); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
}

func TestRateZeroIsUnlimited(t *testing.T) {
	r := NewRegistry(Limits{})
	ten := r.Get("anyone")
	for i := 0; i < 1000; i++ {
		if err := ten.Admit(); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}

func TestJobAndByteQuotas(t *testing.T) {
	r := NewRegistry(Limits{MaxJobs: 2, MaxBytes: 100})
	ten := r.Get("bob")
	if err := ten.AcquireJob(60); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	if err := ten.AcquireJob(40); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if err := ten.AcquireJob(1); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("job 3: want ErrJobQuota, got %v", err)
	}
	ten.ReleaseJob(40)
	// Slot free but bytes would exceed: 60 + 50 > 100.
	if err := ten.AcquireJob(50); !errors.Is(err, ErrByteQuota) {
		t.Fatalf("want ErrByteQuota, got %v", err)
	}
	// Failed acquire must not leak a slot or bytes.
	if err := ten.AcquireJob(10); err != nil {
		t.Fatalf("job after failed acquire: %v", err)
	}
	u := ten.Usage()
	if u.Jobs != 2 || u.Bytes != 70 {
		t.Fatalf("usage = %+v, want jobs=2 bytes=70", u)
	}
}

func TestStreamQuota(t *testing.T) {
	r := NewRegistry(Limits{MaxStreams: 1})
	ten := r.Get("carol")
	if err := ten.AcquireStream(); err != nil {
		t.Fatalf("stream 1: %v", err)
	}
	if err := ten.AcquireStream(); !errors.Is(err, ErrStreamQuota) {
		t.Fatalf("stream 2: want ErrStreamQuota, got %v", err)
	}
	ten.ReleaseStream()
	if err := ten.AcquireStream(); err != nil {
		t.Fatalf("stream after release: %v", err)
	}
}

func TestReserveBytesIncremental(t *testing.T) {
	r := NewRegistry(Limits{MaxBytes: 10})
	ten := r.Get("dave")
	if err := ten.ReserveBytes(6); err != nil {
		t.Fatalf("reserve 6: %v", err)
	}
	if err := ten.ReserveBytes(5); !errors.Is(err, ErrByteQuota) {
		t.Fatalf("reserve 5: want ErrByteQuota, got %v", err)
	}
	ten.ReleaseBytes(3)
	if err := ten.ReserveBytes(5); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
}

func TestRegistryDefaultAndCanonical(t *testing.T) {
	r := NewRegistry(Limits{Weight: 3})
	if got := r.Get("").Name(); got != DefaultName {
		t.Fatalf("empty name -> %q, want %q", got, DefaultName)
	}
	if got := r.Get("  spacey  ").Name(); got != "spacey" {
		t.Fatalf("trimmed name -> %q", got)
	}
	long := make([]byte, 2*MaxName)
	for i := range long {
		long[i] = 'x'
	}
	if got := r.Get(string(long)).Name(); len(got) != MaxName {
		t.Fatalf("long name len = %d, want %d", len(got), MaxName)
	}
	if w := r.Get("fresh").Weight(); w != 3 {
		t.Fatalf("default weight = %d, want 3", w)
	}
}

func TestRegistryOverflowCap(t *testing.T) {
	r := NewRegistry(Limits{})
	r.max = 4
	for i := 0; i < 4; i++ {
		r.Get(fmt.Sprintf("t%d", i))
	}
	over := r.Get("one-too-many")
	if over.Name() != OverflowName {
		t.Fatalf("past-cap tenant = %q, want %q", over.Name(), OverflowName)
	}
	// All past-cap identities share the overflow tenant.
	if r.Get("another") != over {
		t.Fatal("overflow identities must share one tenant")
	}
	// An already-tracked tenant is still itself.
	if r.Get("t0").Name() != "t0" {
		t.Fatal("pre-cap tenant lost")
	}
}

func TestSetAndApplyLiveTuning(t *testing.T) {
	r := NewRegistry(Limits{MaxJobs: 4})
	var hooked []string
	r.OnChange(func(name string, lim Limits) {
		hooked = append(hooked, fmt.Sprintf("%s:%d", name, lim.MaxJobs))
	})
	ten := r.Get("erin")
	for i := 0; i < 4; i++ {
		if err := ten.AcquireJob(0); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	r.Set("erin", Limits{MaxJobs: 2})
	if err := ten.AcquireJob(0); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("shrunk quota must bind immediately, got %v", err)
	}
	r.Apply("erin", Limits{MaxJobs: 8})
	if err := ten.AcquireJob(0); err != nil {
		t.Fatalf("grown quota: %v", err)
	}
	if len(hooked) != 1 || hooked[0] != "erin:2" {
		t.Fatalf("OnChange calls = %v, want exactly [erin:2] (Apply must not fire)", hooked)
	}
}

func TestUsageSaturation(t *testing.T) {
	r := NewRegistry(Limits{MaxJobs: 4, MaxStreams: 2})
	ten := r.Get("frank")
	_ = ten.AcquireJob(0)
	_ = ten.AcquireStream()
	_ = ten.AcquireStream()
	u := ten.Usage()
	if u.Saturation != 1 {
		t.Fatalf("saturation = %v, want 1 (streams full)", u.Saturation)
	}
	ten.ReleaseStream()
	ten.ReleaseStream()
	u = ten.Usage()
	if u.Saturation != 0.25 {
		t.Fatalf("saturation = %v, want 0.25 (1/4 jobs)", u.Saturation)
	}
}

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("alice:weight=4,rate=50,jobs=16; bob:rate=5,burst=10,bytes=1024,streams=2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	a := m["alice"]
	if a.Weight != 4 || a.Rate != 50 || a.MaxJobs != 16 {
		t.Fatalf("alice = %+v", a)
	}
	b := m["bob"]
	if b.Rate != 5 || b.Burst != 10 || b.MaxBytes != 1024 || b.MaxStreams != 2 {
		t.Fatalf("bob = %+v", b)
	}
	for _, bad := range []string{"noclause", "x:rate", "x:rate=abc", "x:bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q): want error", bad)
		}
	}
	if m, err := ParseSpec(""); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry(Limits{})
	r.Get("zeta")
	r.Get("alpha")
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alpha" || snap[1].Name != "zeta" {
		t.Fatalf("snapshot = %+v", snap)
	}
}
