package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/retry"
)

// newJournal opens a journal in a fresh temp dir.
func newJournal(t *testing.T) *journal.Journal {
	t.Helper()
	jnl, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return jnl
}

// waitAllTerminal polls until every job in the service is done or failed
// and the count matches want.
func waitAllTerminal(t *testing.T, s *Service, want int) []JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		views := s.Jobs()
		terminal := 0
		for _, v := range views {
			if v.Status == StatusDone || v.Status == StatusFailed {
				terminal++
			}
		}
		if len(views) >= want && terminal == len(views) {
			return views
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("jobs never all settled (want %d)", want)
	return nil
}

// TestWorkerPanicIsolated: an analyzer panic fails its own job with the
// panic value and a stack fragment, while the worker survives and
// processes the next job.
func TestWorkerPanicIsolated(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)

	s := New(Config{Workers: 1, QueueSize: 8})
	s.Start()

	faultinject.Enable("worker.replay", faultinject.Fault{Panic: "injected analyzer crash", Count: 1})
	v1, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got1 := waitSettled(t, s, v1.ID)
	if got1.Status != StatusFailed {
		t.Fatalf("panicked job status %q, want failed", got1.Status)
	}
	if !strings.Contains(got1.Error, "analyzer panicked: injected analyzer crash") {
		t.Errorf("error %q does not carry the panic value", got1.Error)
	}
	if !strings.Contains(got1.Error, "goroutine") {
		t.Errorf("error %q does not carry a stack fragment", got1.Error)
	}

	// The pool must be intact: the same single worker runs the next job.
	v2, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitSettled(t, s, v2.ID)
	if got2.Status != StatusDone {
		t.Fatalf("job after panic: %q (error %q), want done", got2.Status, got2.Error)
	}
	shutdownOrFail(t, s)

	m := s.Metrics().Snapshot()
	if m.JobsPanicked != 1 || m.JobsFailed != 1 || m.JobsCompleted != 1 {
		t.Errorf("metrics %+v, want 1 panicked, 1 failed, 1 completed", m)
	}
}

// TestJournalRecoveryReplaysOnce is the kill/restart scenario: jobs
// journaled by one service life are re-enqueued exactly once by the next,
// and a third life sees only terminal history.
func TestJournalRecoveryReplaysOnce(t *testing.T) {
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")
	dir := t.TempDir()

	// Life 1 accepts 5 jobs but is "killed" before any worker starts.
	jnl1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl1})
	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := s1.SubmitKeyed("arbalest", fmt.Sprintf("key-%d", i), tr); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// s1 is abandoned here: no Start, no Shutdown — a crash.

	// Life 2 recovers the spool and runs the backlog.
	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, QueueSize: 8, Journal: jnl2})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != n {
		t.Fatalf("recovered %d jobs, want %d", requeued, n)
	}
	s2.Start()
	views := waitAllTerminal(t, s2, n)
	seen := map[string]bool{}
	for _, v := range views {
		if seen[v.ID] {
			t.Errorf("job %s appears twice after recovery", v.ID)
		}
		seen[v.ID] = true
		if v.Status != StatusDone {
			t.Errorf("recovered job %s: %q (error %q)", v.ID, v.Status, v.Error)
			continue
		}
		if v.Result == nil || v.Result.Issues != want.Issues {
			t.Errorf("recovered job %s result %+v, want %d issues", v.ID, v.Result, want.Issues)
		}
	}
	shutdownOrFail(t, s2)
	if m := s2.Metrics().Snapshot(); m.JobsRecovered != n || m.JobsCompleted != n {
		t.Errorf("metrics %+v, want %d recovered and completed", m, n)
	}

	// Life 3 sees only terminal history: nothing to re-run, results and
	// idempotency keys intact.
	jnl3, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl3})
	requeued, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 0 {
		t.Fatalf("third life re-enqueued %d jobs, want 0", requeued)
	}
	hist := s3.Jobs()
	if len(hist) != n {
		t.Fatalf("third life sees %d jobs, want %d", len(hist), n)
	}
	for _, v := range hist {
		if v.Status != StatusDone || v.Result == nil || v.Result.Issues != want.Issues {
			t.Errorf("history job %s: %q result %+v", v.ID, v.Status, v.Result)
		}
	}
	// A duplicate of a journaled key is deduplicated even after restart.
	dupView, duplicate, err := s3.SubmitKeyed("arbalest", "key-3", tr)
	if err != nil || !duplicate {
		t.Fatalf("resubmit of journaled key: dup=%v err=%v, want dup", duplicate, err)
	}
	if dupView.Status != StatusDone {
		t.Errorf("deduplicated view %q, want the finished original", dupView.Status)
	}
}

// TestRecoveryAfterRunningMark: a job that crashed mid-run (last journal
// state "running") is re-enqueued and re-analyzed from scratch.
func TestRecoveryAfterRunningMark(t *testing.T) {
	tr := recordTrace(t, 22)
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Journal: jnl})
	v, err := s1.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the worker dying mid-job: mark running, never terminal.
	if err := jnl.Mark(v.ID, journal.StatusRunning, "", nil); err != nil {
		t.Fatal(err)
	}

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Journal: jnl2})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("requeued %d, want 1", requeued)
	}
	s2.Start()
	got := waitSettled(t, s2, v.ID)
	if got.Status != StatusDone {
		t.Errorf("re-run job %q (error %q), want done", got.Status, got.Error)
	}
	shutdownOrFail(t, s2)
}

// TestRetentionGCEvictsOldestFinished: the jobs map, listing, and spool
// stay bounded by MaxFinishedJobs, evicting oldest-finished first.
func TestRetentionGCEvictsOldestFinished(t *testing.T) {
	tr := recordTrace(t, 1)
	jnl := newJournal(t)
	s := New(Config{Workers: 1, QueueSize: 32, Journal: jnl, MaxFinishedJobs: 3})
	s.Start()

	const n = 10
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, err := s.Submit("arbalest", tr)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = v.ID
	}
	shutdownOrFail(t, s) // drains all 10

	views := s.Jobs()
	if len(views) != 3 {
		t.Fatalf("after GC: %d jobs retained, want 3", len(views))
	}
	// With one worker, finish order == submission order: the survivors
	// are the last three submitted.
	for i, v := range views {
		if want := ids[n-3+i]; v.ID != want {
			t.Errorf("retained[%d] = %s, want %s", i, v.ID, want)
		}
	}
	if m := s.Metrics().Snapshot(); m.JobsEvicted != n-3 {
		t.Errorf("jobsEvicted %d, want %d", m.JobsEvicted, n-3)
	}
	// Evicted jobs' spool files are gone too: a fresh recovery sees only
	// the retained three.
	jnl2, err := journal.Open(jnl.Dir())
	if err != nil {
		t.Fatal(err)
	}
	recovered, _, errs := jnl2.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(recovered) != 3 {
		t.Errorf("spool holds %d jobs after GC, want 3", len(recovered))
	}
}

// TestRetentionGCByAge: terminal jobs older than MaxJobAge are evicted.
func TestRetentionGCByAge(t *testing.T) {
	tr := recordTrace(t, 1)
	s := New(Config{Workers: 1, MaxFinishedJobs: -1, MaxJobAge: time.Nanosecond})
	s.Start()
	v, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	waitSettled(t, s, v.ID)
	shutdownOrFail(t, s)
	time.Sleep(time.Millisecond) // comfortably past MaxJobAge
	if evicted := s.GC(); evicted != 1 {
		t.Fatalf("GC evicted %d, want 1", evicted)
	}
	if _, ok := s.Job(v.ID); ok {
		t.Error("aged-out job still present")
	}
}

// TestIdempotentSubmitHTTP: the same Idempotency-Key on a second POST
// returns the original job (200, not a second 202) and nothing new runs.
func TestIdempotentSubmitHTTP(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func() (*http.Response, JobView) {
		t.Helper()
		var body strings.Builder
		if err := tr.Save(&body); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs?tool=arbalest", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(retry.IdempotencyHeader, "upload-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp, decodeView(t, resp)
	}

	resp1, v1 := post()
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d, want 202", resp1.StatusCode)
	}
	resp2, v2 := post()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("duplicate POST: %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("duplicate POST missing Idempotency-Replayed header")
	}
	if v1.ID != v2.ID {
		t.Errorf("duplicate created a second job: %s vs %s", v1.ID, v2.ID)
	}
	waitSettled(t, s, v1.ID)
	shutdownOrFail(t, s)
	m := s.Metrics().Snapshot()
	if m.JobsAccepted != 1 || m.JobsDeduplicated != 1 {
		t.Errorf("metrics %+v, want 1 accepted, 1 deduplicated", m)
	}
}

// TestHealthAndReadiness: /healthz flips to 503 once shutdown begins;
// /readyz degrades at >=90% queue fullness.
func TestHealthAndReadiness(t *testing.T) {
	tr := recordTrace(t, 1)
	s := New(Config{Workers: 1, QueueSize: 10})
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func(string) {
		once.Do(func() { <-release })
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz idle: %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz idle: %d, want 200", got)
	}

	// One job occupies the held worker, nine fill the queue to 90%.
	for i := 0; i < 10; i++ {
		if _, err := s.Submit("arbalest", tr); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz at 90%% queue: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz under load: %d, want 200 (still alive)", got)
	}

	close(release)
	shutdownOrFail(t, s)
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown: %d, want 503", got)
	}
}

// TestMarkFailureTolerated: a journal failure on a lifecycle mark is
// logged and counted, but the job still completes.
func TestMarkFailureTolerated(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 1)
	s := New(Config{Workers: 1, Journal: newJournal(t)})
	s.Start()
	faultinject.Enable("journal.mark", faultinject.Fault{Err: errors.New("disk detached")})
	v, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got := waitSettled(t, s, v.ID)
	if got.Status != StatusDone {
		t.Fatalf("job %q (error %q), want done despite mark failures", got.Status, got.Error)
	}
	shutdownOrFail(t, s)
	if m := s.Metrics().Snapshot(); m.JournalErrors == 0 {
		t.Error("journal mark failures were not counted")
	}
}

// TestChaosFaultInjection is the PR's acceptance scenario: 200 concurrent
// submissions against a daemon with journal-write errors, fsync delays,
// analyzer panics, and slow workers injected at >=10% rates. Every
// accepted job must reach a terminal state exactly once; a simulated
// crash (a new Service over the same spool) must recover all non-terminal
// jobs without duplication.
func TestChaosFaultInjection(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Seed(20260805)
	tr := recordTrace(t, 22)
	dir := t.TempDir()

	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// CheckpointEvery and StallTimeout run the full durability machinery
	// under the same chaos: checkpoint writes that fail at 10% are
	// non-fatal by design, and a spuriously tripped watchdog self-heals
	// through its sequential retry — either way every job must still reach
	// a terminal state exactly once.
	s := New(Config{Workers: 8, QueueSize: 256, Journal: jnl, MaxFinishedJobs: -1,
		CheckpointEvery: 1024, StallTimeout: 10 * time.Second})
	s.Start()

	faultinject.Enable("journal.append", faultinject.Fault{Err: errors.New("chaos: spool write error"), Prob: 0.15})
	faultinject.Enable("journal.fsync", faultinject.Fault{Delay: 100 * time.Microsecond, Prob: 0.20})
	faultinject.Enable("journal.checkpoint", faultinject.Fault{Err: errors.New("chaos: checkpoint write error"), Prob: 0.10})
	faultinject.Enable("worker.replay", faultinject.Fault{Panic: "chaos: injected analyzer crash", Prob: 0.12})
	faultinject.Enable("worker.slow", faultinject.Fault{Delay: 2 * time.Millisecond, Prob: 0.15})

	const n = 200
	var (
		mu       sync.Mutex
		accepted = make(map[string]string) // idempotency key -> job id
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("chaos-%d", i)
			// A client retry loop: same key every attempt, so a retried
			// accept cannot double-enqueue.
			for attempt := 0; attempt < 100; attempt++ {
				view, _, err := s.SubmitKeyed("arbalest", key, tr)
				if err == nil {
					mu.Lock()
					if prev, dup := accepted[key]; dup && prev != view.ID {
						t.Errorf("key %s accepted as both %s and %s", key, prev, view.ID)
					}
					accepted[key] = view.ID
					mu.Unlock()
					return
				}
				if errors.Is(err, ErrJournal) || errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				t.Errorf("submission %d: unexpected error %v", i, err)
				return
			}
			t.Errorf("submission %d: never accepted", i)
		}(i)
	}
	wg.Wait()
	if len(accepted) != n {
		t.Fatalf("accepted %d submissions, want %d", len(accepted), n)
	}

	views := waitAllTerminal(t, s, n)
	if len(views) != n {
		t.Fatalf("daemon holds %d jobs, want %d", len(views), n)
	}
	seen := make(map[string]int)
	var panicked int
	for _, v := range views {
		seen[v.ID]++
		if v.Status == StatusFailed && strings.Contains(v.Error, "analyzer panicked") {
			panicked++
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("job %s reached a terminal state %d times", id, c)
		}
	}
	for key, id := range accepted {
		if seen[id] != 1 {
			t.Errorf("accepted job %s (key %s) is missing from the terminal set", id, key)
		}
	}
	if panicked == 0 {
		t.Error("chaos run injected no analyzer panics; fault wiring is broken")
	}
	shutdownOrFail(t, s) // drains and flushes every terminal journal mark

	m := s.Metrics().Snapshot()
	if m.JobsAccepted != n || m.JobsCompleted+m.JobsFailed != n {
		t.Errorf("metrics %+v: accepted/terminal counts do not balance at %d", m, n)
	}
	if m.JobsPanicked == 0 || m.JournalErrors == 0 {
		t.Errorf("metrics %+v: expected panics and journal errors under chaos", m)
	}
	if m.CheckpointsWritten == 0 {
		t.Errorf("metrics %+v: checkpointing never ran under chaos", m)
	}

	// Crash simulation part 1: a new life over the same spool finds the
	// whole history terminal — nothing is re-run, nothing duplicated.
	faultinject.Reset()
	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 4, QueueSize: 64, Journal: jnl2, MaxFinishedJobs: -1})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 0 {
		t.Fatalf("clean-history recovery re-enqueued %d jobs, want 0", requeued)
	}
	if got := len(s2.Jobs()); got != n {
		t.Fatalf("recovered history holds %d jobs, want %d", got, n)
	}

	// Crash simulation part 2: accept fresh jobs, then "crash" before any
	// worker runs (s2 is never started). The next life must recover all
	// of them, exactly once each.
	const k = 25
	crashKeys := make(map[string]string, k)
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("crash-%d", i)
		view, _, err := s2.SubmitKeyed("arbalest", key, tr)
		if err != nil {
			t.Fatalf("crash-phase submit %d: %v", i, err)
		}
		crashKeys[key] = view.ID
	}

	// The crash also corrupts one job's spooled trace (a bit flip, as bad
	// sectors do). CRC framing must confine the damage to that one job:
	// recovery skips it with a per-job error and re-enqueues the rest.
	corruptID := crashKeys["crash-0"]
	tracePath := filepath.Join(dir, corruptID+".trace")
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	jnl3, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Workers: 4, QueueSize: 8, Journal: jnl3, MaxFinishedJobs: -1})
	requeued, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != k-1 {
		t.Fatalf("post-crash recovery re-enqueued %d jobs, want %d (one corrupt)", requeued, k-1)
	}
	if m := s3.Metrics().Snapshot(); m.JournalErrors == 0 {
		t.Errorf("metrics %+v: corrupted spool trace not reported", m)
	}
	s3.Start()
	all := waitAllTerminal(t, s3, n+k-1)
	if len(all) != n+k-1 {
		t.Fatalf("final history holds %d jobs, want %d", len(all), n+k-1)
	}
	finalSeen := make(map[string]int)
	for _, v := range all {
		finalSeen[v.ID]++
	}
	for key, id := range crashKeys {
		if id == corruptID {
			if finalSeen[id] != 0 {
				t.Errorf("corrupted job %s resurfaced %d times", id, finalSeen[id])
			}
			continue
		}
		if finalSeen[id] != 1 {
			t.Errorf("crashed job %s (key %s) seen %d times after recovery", id, key, finalSeen[id])
		}
	}
	shutdownOrFail(t, s3)
	m3 := s3.Metrics().Snapshot()
	if m3.JobsRecovered != k-1 || m3.JobsCompleted+m3.JobsFailed != k-1 {
		t.Errorf("recovery metrics %+v, want %d recovered and run exactly once", m3, k-1)
	}
}
