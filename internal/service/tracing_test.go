// Tests for the daemon-side tracing surface: the /v1/traces query API, the
// standalone degradation of /v1/fleet/status, the disabled-tracing path, and
// span survival on failed and watchdog-cancelled replay attempts.
package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// getJSON decodes one GET into out, failing on non-200.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestTraceHTTPAndStandaloneFleetStatus drives the full query surface over
// one traced job: a client-minted traceparent joins the job to the caller's
// trace, the trace is listable, fetchable as a tree and as OTLP/JSON,
// exportable in bulk, and the standalone fleet status reports the inline
// pool as a synthetic worker with a span-derived latency digest.
func TestTraceHTTPAndStandaloneFleetStatus(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1, QueueSize: 8})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := telemetry.NewTraceContext()
	v, _, err := s.SubmitTrace(SubmitOptions{Tool: "arbalest", Traceparent: client.Traceparent()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != client.TraceID {
		t.Fatalf("job joined trace %s, client sent %s", v.TraceID, client.TraceID)
	}
	if done := waitSettled(t, s, v.ID); done.Status != StatusDone {
		t.Fatalf("job %s (%s), want done", done.Status, done.Error)
	}

	var list struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	getJSON(t, srv.URL+"/v1/traces", &list)
	if len(list.Traces) != 1 || list.Traces[0].TraceID != client.TraceID ||
		list.Traces[0].Name != "job" || list.Traces[0].Status != "ok" {
		t.Fatalf("trace list = %+v", list.Traces)
	}

	var root telemetry.Span
	getJSON(t, srv.URL+"/v1/traces/"+client.TraceID, &root)
	if root.TraceID != client.TraceID || root.ParentID != client.SpanID {
		t.Fatalf("root trace %s parent %s, want client's %s/%s", root.TraceID, root.ParentID, client.TraceID, client.SpanID)
	}
	replay := root.Find("replay")
	if replay == nil || replay.Status != "ok" || replay.Counts["events"] == 0 {
		t.Fatalf("replay span = %+v", replay)
	}

	var otlp telemetry.OTLPExport
	getJSON(t, srv.URL+"/v1/traces/"+client.TraceID+"?format=otlp", &otlp)
	if len(otlp.ResourceSpans) != 1 ||
		otlp.ResourceSpans[0].Resource.Attributes[0].Value.StringValue != "arbalestd" {
		t.Fatalf("otlp single-trace export = %+v", otlp)
	}
	var export telemetry.OTLPExport
	getJSON(t, srv.URL+"/v1/traces/export", &export)
	if len(export.ResourceSpans) != 1 || len(export.ResourceSpans[0].ScopeSpans[0].Spans) != root.SpanCount() {
		t.Fatalf("bulk export has wrong span count")
	}

	if resp, err := http.Get(srv.URL + "/v1/traces/no-such-trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
		}
	}

	var st FleetStatus
	getJSON(t, srv.URL+"/v1/fleet/status", &st)
	if st.Role != "standalone" {
		t.Errorf("role = %q, want standalone", st.Role)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "inline-pool" || !st.Workers[0].Live {
		t.Errorf("standalone workers = %+v, want one live inline-pool", st.Workers)
	}
	if st.Traces != 1 {
		t.Errorf("status reports %d traces, want 1", st.Traces)
	}
	if st.JobLatency == nil || st.JobLatency.Count != 1 || st.JobLatency.P50Nanos <= 0 {
		t.Errorf("job latency digest = %+v", st.JobLatency)
	}
}

// TestTracingDisabled: a negative TraceCapacity turns tracing off without
// turning off the API — jobs run untraced, the listing is empty, lookups
// 404, and fleet status still answers.
func TestTracingDisabled(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1, TraceCapacity: -1})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := telemetry.NewTraceContext()
	v, _, err := s.SubmitTrace(SubmitOptions{Tool: "arbalest", Traceparent: client.Traceparent()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != "" {
		t.Fatalf("disabled tracing still minted trace %s", v.TraceID)
	}
	if done := waitSettled(t, s, v.ID); done.Status != StatusDone {
		t.Fatalf("job %s (%s), want done", done.Status, done.Error)
	}
	var list struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	getJSON(t, srv.URL+"/v1/traces", &list)
	if len(list.Traces) != 0 {
		t.Fatalf("disabled store listed %+v", list.Traces)
	}
	if resp, err := http.Get(srv.URL + "/v1/traces/" + client.TraceID); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("lookup on disabled store: status %d, want 404", resp.StatusCode)
		}
	}
	var st FleetStatus
	getJSON(t, srv.URL+"/v1/fleet/status", &st)
	if st.Role != "standalone" || st.Traces != 0 {
		t.Errorf("fleet status with tracing disabled = %+v", st)
	}
}

// TestFailedAttemptSpansSurvive: a panicked analyzer and a watchdog-killed
// replay both end their replay span with error status instead of dropping
// it — the failure is visible in the trace, not a hole.
func TestFailedAttemptSpansSurvive(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)

	s := New(Config{Workers: 1, QueueSize: 8})
	s.Start()
	faultinject.Enable("worker.replay", faultinject.Fault{Panic: "injected analyzer crash", Count: 1})
	v, _, err := s.SubmitTrace(SubmitOptions{Tool: "arbalest"}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitSettled(t, s, v.ID); done.Status != StatusFailed {
		t.Fatalf("panicked job %s, want failed", done.Status)
	}
	root, ok := s.JobTrace(v.ID)
	if !ok || root == nil {
		t.Fatal("panicked job has no trace")
	}
	replay := root.Find("replay")
	if replay == nil {
		t.Fatal("panicked attempt dropped its replay span")
	}
	if replay.Status != "error" || !strings.Contains(replay.Error, "analyzer panicked") {
		t.Fatalf("replay span = status %q error %q, want the panic recorded", replay.Status, replay.Error)
	}
	if replay.DurationNanos <= 0 {
		t.Errorf("panicked replay span has duration %d, want > 0", replay.DurationNanos)
	}
	if root.Status != "error" {
		t.Errorf("job root status %q, want error", root.Status)
	}
	shutdownOrFail(t, s)

	// Watchdog: a nanosecond replay budget cancels the attempt; the span
	// records the deadline error.
	s2 := New(Config{Workers: 1, ReplayTimeout: time.Nanosecond})
	s2.Start()
	defer shutdownOrFail(t, s2)
	v2, _, err := s2.SubmitTrace(SubmitOptions{Tool: "arbalest"}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitSettled(t, s2, v2.ID); done.Status != StatusFailed {
		t.Fatalf("timed-out job %s, want failed", done.Status)
	}
	root2, ok := s2.JobTrace(v2.ID)
	if !ok || root2 == nil {
		t.Fatal("timed-out job has no trace")
	}
	replay2 := root2.Find("replay")
	if replay2 == nil || replay2.Status != "error" || !strings.Contains(replay2.Error, "deadline") {
		t.Fatalf("timed-out replay span = %+v, want error mentioning the deadline", replay2)
	}
}
