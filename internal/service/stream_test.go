package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/stream"
	"repro/internal/telemetry/promtest"
	"repro/internal/tools"
	"repro/internal/trace"
)

// frameStreamBody encodes tr.Events[from:] as one framed ingest request
// body: the wire header plus one CRC32C frame per event.
func frameStreamBody(t testing.TB, tr *trace.Trace, from int) []byte {
	t.Helper()
	body := trace.StreamHeader()
	var err error
	for i := from; i < len(tr.Events); i++ {
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	return body
}

func decodeStreamView(t testing.TB, resp *http.Response) stream.View {
	t.Helper()
	defer resp.Body.Close()
	var v stream.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode stream view: %v", err)
	}
	return v
}

// openStream opens a session over HTTP and fails the test on any non-201.
func openStream(t testing.TB, client *http.Client, base, tool string) stream.View {
	t.Helper()
	resp, err := client.Post(base+"/v1/streams?tool="+tool, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("open stream: status %d: %s", resp.StatusCode, body)
	}
	return decodeStreamView(t, resp)
}

// getStreamView fetches a session's current view (the resume cursor).
func getStreamView(client *http.Client, url string) (stream.View, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return stream.View{}, 0, err
	}
	defer resp.Body.Close()
	var v stream.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return stream.View{}, resp.StatusCode, err
	}
	return v, resp.StatusCode, nil
}

// renderedSummary renders a summary's reports to strings for comparison.
func renderedSummary(sum *tools.Summary) []string {
	out := make([]string, len(sum.Reports))
	for i := range sum.Reports {
		out[i] = sum.Reports[i].String()
	}
	return out
}

// TestStreamHTTPLifecycle drives one session through the full happy path
// over HTTP — open, chunked upload, mid-stream findings, long-poll wakeup,
// idempotent close — and requires the streamed result to match the CLI's
// one-shot batch replay of the same trace.
func TestStreamHTTPLifecycle(t *testing.T) {
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	view := openStream(t, client, srv.URL, "arbalest")
	if view.Status != stream.StatusLive || view.Events != 0 {
		t.Fatalf("fresh session: %+v", view)
	}
	url := srv.URL + "/v1/streams/" + view.ID

	// Park a long-poller on the empty findings cursor before any event
	// arrives; the upload below must wake it with the first report.
	pollDone := make(chan stream.FindingsView, 1)
	go func() {
		resp, err := client.Get(url + "/findings?since=0&wait=10s")
		var fv stream.FindingsView
		if err == nil {
			_ = json.NewDecoder(resp.Body).Decode(&fv)
			resp.Body.Close()
		}
		pollDone <- fv
	}()

	resp, err := client.Post(url+"/events", "application/octet-stream", bytes.NewReader(frameStreamBody(t, tr, 0)))
	if err != nil {
		t.Fatal(err)
	}
	uploaded := decodeStreamView(t, resp)
	if uploaded.Events != uint64(len(tr.Events)) {
		t.Fatalf("uploaded view acknowledges %d events, want %d", uploaded.Events, len(tr.Events))
	}
	if uploaded.Findings != want.Issues {
		t.Fatalf("mid-stream findings %d, want %d (batch)", uploaded.Findings, want.Issues)
	}

	select {
	case fv := <-pollDone:
		if len(fv.Reports) == 0 {
			t.Fatalf("long-poller woke with no reports: %+v", fv)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poller never woke")
	}

	// Findings with a cursor pick up from where the poller left off.
	resp, err = client.Get(url + fmt.Sprintf("/findings?since=%d", want.Issues))
	if err != nil {
		t.Fatal(err)
	}
	var tail stream.FindingsView
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tail.Reports) != 0 || tail.Next != want.Issues {
		t.Fatalf("tail page: %+v, want empty with next=%d", tail, want.Issues)
	}

	// Close twice: both succeed, both carry the settled summary.
	for i := 0; i < 2; i++ {
		resp, err := client.Post(url+"/close", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("close #%d: status %d", i+1, resp.StatusCode)
		}
		closed := decodeStreamView(t, resp)
		if closed.Status != stream.StatusDone || closed.Result == nil {
			t.Fatalf("close #%d: %+v", i+1, closed)
		}
		got := renderedSummary(closed.Result)
		if len(got) != want.Issues {
			t.Fatalf("close #%d: %d findings, want %d", i+1, len(got), want.Issues)
		}
		for j, w := range renderedSummary(want) {
			if got[j] != w {
				t.Fatalf("close #%d: report %d differs\nstreamed: %s\nbatch:    %s", i+1, j, got[j], w)
			}
		}
	}

	// A list includes the settled session; events on it now conflict.
	resp, err = client.Get(srv.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Streams []stream.View `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Streams) != 1 || list.Streams[0].ID != view.ID {
		t.Fatalf("stream list: %+v", list.Streams)
	}
	resp, err = client.Post(url+"/events", "application/octet-stream", bytes.NewReader(frameStreamBody(t, tr, 0)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("events on settled session: status %d, want 409", resp.StatusCode)
	}
}

// TestStreamHTTPValidation covers the endpoint's rejection surface: unknown
// ids, bad cursors, bad tools, and DELETE semantics.
func TestStreamHTTPValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	for _, req := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/v1/streams/nope", http.StatusNotFound},
		{"POST", "/v1/streams/nope/events", http.StatusNotFound},
		{"GET", "/v1/streams/nope/findings", http.StatusNotFound},
		{"POST", "/v1/streams/nope/close", http.StatusNotFound},
		{"DELETE", "/v1/streams/nope", http.StatusNotFound},
		{"POST", "/v1/streams?tool=no-such-tool", http.StatusBadRequest},
	} {
		hr, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != req.wantStatus {
			t.Errorf("%s %s: status %d, want %d", req.method, req.path, resp.StatusCode, req.wantStatus)
		}
	}

	view := openStream(t, client, srv.URL, "arbalest")
	url := srv.URL + "/v1/streams/" + view.ID
	for _, q := range []string{"?since=-1", "?since=x", "?wait=banana", "?wait=-2s"} {
		resp, err := client.Get(url + "/findings" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("findings%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// An empty events body is a liveness probe, not corruption.
	resp, err := client.Post(url+"/events", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeStreamView(t, resp); v.Status != stream.StatusLive || v.Events != 0 {
		t.Fatalf("after empty body: %+v", v)
	}

	// DELETE aborts; the view survives as failed history.
	hr, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err = client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeStreamView(t, resp); v.Status != stream.StatusFailed {
		t.Fatalf("aborted session: %+v", v)
	}
}

// TestStreamHTTPCorruption checks that a bit-flipped frame fails the
// session with 400 and the corruption counter, and the daemon keeps
// serving.
func TestStreamHTTPCorruption(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	view := openStream(t, client, srv.URL, "arbalest")
	body := frameStreamBody(t, tr, 0)
	body[len(body)/2] ^= 0x40
	resp, err := client.Post(srv.URL+"/v1/streams/"+view.ID+"/events", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", resp.StatusCode)
	}
	v, _, err := getStreamView(client, srv.URL+"/v1/streams/"+view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != stream.StatusFailed {
		t.Fatalf("session %s after corruption, want failed", v.Status)
	}
	fams := scrapeMetrics(t, client, srv.URL)
	if smp, ok := promtest.Find(fams, "arbalestd_stream_corruption_total", nil); !ok || smp.Value != 1 {
		t.Fatalf("corruption counter: %+v found=%v, want 1", smp, ok)
	}
}

// TestStreamHTTPBudgetEviction checks the per-stream byte budget: an upload
// that exceeds it gets 413 and the session is evicted with the "budget"
// reason label.
func TestStreamHTTPBudgetEviction(t *testing.T) {
	tr := recordTrace(t, 22)
	body := frameStreamBody(t, tr, 0)
	s := New(Config{Workers: 1, StreamMaxBytes: int64(len(body) / 2)})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	view := openStream(t, client, srv.URL, "arbalest")
	resp, err := client.Post(srv.URL+"/v1/streams/"+view.ID+"/events", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget upload: status %d, want 413", resp.StatusCode)
	}
	v, _, err := getStreamView(client, srv.URL+"/v1/streams/"+view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != stream.StatusEvicted {
		t.Fatalf("session %s after budget breach, want evicted", v.Status)
	}
	fams := scrapeMetrics(t, client, srv.URL)
	if smp, ok := promtest.Find(fams, "arbalestd_streams_evicted_total", map[string]string{"reason": "budget"}); !ok || smp.Value != 1 {
		t.Fatalf("evicted{budget}: %+v found=%v, want 1", smp, ok)
	}
}

// TestStreamHTTPSlowConsumer holds a connection open without sending and
// checks the rolling read deadline evicts the session with 408 and the
// "slow" reason label.
func TestStreamHTTPSlowConsumer(t *testing.T) {
	s := New(Config{Workers: 1, StreamReadTimeout: 100 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	view := openStream(t, client, srv.URL, "arbalest")
	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		// One valid header, then silence: a consumer that stalls mid-stream.
		_, _ = pw.Write(trace.StreamHeader())
	}()
	resp, err := client.Post(srv.URL+"/v1/streams/"+view.ID+"/events", "application/octet-stream", pr)
	if err != nil {
		t.Fatalf("stalled upload should get a response, not a transport error: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("stalled upload: status %d, want 408", resp.StatusCode)
	}
	v, _, err := getStreamView(client, srv.URL+"/v1/streams/"+view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != stream.StatusEvicted {
		t.Fatalf("session %s after stall, want evicted", v.Status)
	}
	fams := scrapeMetrics(t, client, srv.URL)
	if smp, ok := promtest.Find(fams, "arbalestd_streams_evicted_total", map[string]string{"reason": "slow"}); !ok || smp.Value != 1 {
		t.Fatalf("evicted{slow}: %+v found=%v, want 1", smp, ok)
	}
}

// TestStreamHTTPSaturation checks the admission cap end to end: 429 with a
// Retry-After floor at the cap, /readyz degraded while saturated, both
// recovering when a slot frees.
func TestStreamHTTPSaturation(t *testing.T) {
	s := New(Config{Workers: 1, MaxStreams: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	view := openStream(t, client, srv.URL, "arbalest")
	resp, err := client.Post(srv.URL+"/v1/streams?tool=arbalest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("open at cap: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After floor")
	}
	readyz := func() (int, string) {
		resp, err := client.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := readyz(); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "streams saturated") || !strings.Contains(body, `"streamsSaturated": true`) {
		t.Fatalf("readyz at cap: %d %q", code, body)
	}
	resp, err = client.Post(srv.URL+"/v1/streams/"+view.ID+"/close", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if code, body := readyz(); code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("readyz after close: %d %q", code, body)
	}
	openStream(t, client, srv.URL, "arbalest")
}

// scrapeMetrics fetches /metrics and runs it through the promtest
// structural validator.
func scrapeMetrics(t testing.TB, client *http.Client, base string) []promtest.Family {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promtest.Validate(string(body))
	if err != nil {
		t.Fatalf("metrics payload failed validation: %v", err)
	}
	return fams
}

// TestStreamConcurrentChaos is the subsystem's load-and-failure proof: over
// 100 concurrent low-rate streams upload the same trace in slices while a
// faultinject point severs requests mid-body at random. Every client
// resumes from the acknowledged cursor and must still converge to the batch
// findings; afterwards the metrics must account for every session exactly
// once, a batch of deliberately abandoned sessions must be evicted as idle,
// and checkpoints must have been cut along the way. Run under -race this is
// also the subsystem's data-race sweep.
func TestStreamConcurrentChaos(t *testing.T) {
	tr := recordTrace(t, 22)
	// The point here is concurrency, resume, and exactly-once accounting,
	// not analysis depth (full-trace equivalence is covered elsewhere). A
	// prefix keeps 100+ race-instrumented streams inside the deadline; it
	// must extend past the sync cluster near index 1100 so checkpoint
	// barriers still occur.
	if len(tr.Events) > 1200 {
		tr.Events = tr.Events[:1200]
	}
	want := oneShot(t, tr, "arbalest")
	total := uint64(len(tr.Events))

	jnl, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Start is deliberately deferred until after the upload phase so the
	// idle janitor cannot race the chaos retries; eviction is then asserted
	// on its own terms below.
	s := New(Config{
		Workers:           1,
		Journal:           jnl,
		CheckpointEvery:   8,
		StreamIdleTimeout: time.Second,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	faultinject.Reset()
	faultinject.Seed(7)
	faultinject.Enable("stream.read", faultinject.Fault{
		Err: errors.New("chaos: simulated disconnect"), Prob: 0.25, Count: 250,
	})
	defer faultinject.Reset()

	const nStreams = 104
	sliceLen := len(tr.Events)/3 + 1
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own client: chaos aborts poison pooled
			// connections, and isolation keeps retries independent.
			client := &http.Client{Timeout: time.Minute}
			view, err := func() (stream.View, error) {
				resp, err := client.Post(srv.URL+"/v1/streams?tool=arbalest", "application/json", nil)
				if err != nil {
					return stream.View{}, err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					body, _ := io.ReadAll(resp.Body)
					return stream.View{}, fmt.Errorf("open: %d: %s", resp.StatusCode, body)
				}
				var v stream.View
				return v, json.NewDecoder(resp.Body).Decode(&v)
			}()
			if err != nil {
				errs <- err
				return
			}
			url := srv.URL + "/v1/streams/" + view.ID

			// Upload in slices, resuming from the acknowledged cursor after
			// every chaos disconnect. Over-sending is safe: duplicates are
			// skipped by sequence number.
			deadline := time.Now().Add(150 * time.Second)
			for {
				v, _, gerr := getStreamView(client, url)
				if gerr != nil {
					errs <- fmt.Errorf("%s: cursor fetch: %w", view.ID, gerr)
					return
				}
				if v.Status != stream.StatusLive {
					errs <- fmt.Errorf("%s: went %s mid-upload: %s", view.ID, v.Status, v.Error)
					return
				}
				if v.Events == total {
					break
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("%s: upload did not converge, at %d/%d", view.ID, v.Events, total)
					return
				}
				end := min(int(v.Events)+sliceLen, len(tr.Events))
				body := trace.StreamHeader()
				var ferr error
				for j := int(v.Events); j < end; j++ {
					if body, ferr = trace.AppendEventFrame(body, &tr.Events[j]); ferr != nil {
						errs <- ferr
						return
					}
				}
				resp, perr := client.Post(url+"/events", "application/octet-stream", bytes.NewReader(body))
				if perr != nil {
					continue // severed mid-body; re-fetch the cursor and resume
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}

			for attempt := 0; ; attempt++ {
				resp, cerr := client.Post(url+"/close", "application/json", nil)
				if cerr != nil {
					if attempt > 20 {
						errs <- fmt.Errorf("%s: close never succeeded: %w", view.ID, cerr)
						return
					}
					continue
				}
				final := stream.View{}
				derr := json.NewDecoder(resp.Body).Decode(&final)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: close: status %d, %v", view.ID, resp.StatusCode, derr)
					return
				}
				if final.Status != stream.StatusDone || final.Events != total || final.Result == nil || final.Result.Issues != want.Issues {
					errs <- fmt.Errorf("%s: settled wrong: %+v", view.ID, final)
					return
				}
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if faultinject.Fired("stream.read") == 0 {
		t.Fatal("chaos point never fired; the test proved nothing about disconnects")
	}
	faultinject.Reset()

	// Phase two: abandoned sessions. Open a handful, feed them nothing, and
	// let the janitor (started only now) evict them as idle.
	client := srv.Client()
	const nIdle = 4
	for i := 0; i < nIdle; i++ {
		openStream(t, client, srv.URL, "arbalest")
	}
	s.Start()
	defer shutdownOrFail(t, s)
	evictDeadline := time.Now().Add(30 * time.Second)
	for {
		fams := scrapeMetrics(t, client, srv.URL)
		smp, _ := promtest.Find(fams, "arbalestd_streams_evicted_total", map[string]string{"reason": "idle"})
		if smp.Value == nIdle {
			break
		}
		if time.Now().After(evictDeadline) {
			t.Fatalf("evicted{idle} stuck at %v, want %d", smp.Value, nIdle)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The ledger must balance exactly once per session: every chaos stream
	// completed, every abandoned stream evicted, nothing failed, nothing
	// still live, no corruption — and every applied event counted exactly
	// once despite all the duplicate resends.
	fams := scrapeMetrics(t, client, srv.URL)
	for name, want := range map[string]float64{
		"arbalestd_streams_active":          0,
		"arbalestd_streams_opened_total":    nStreams + nIdle,
		"arbalestd_streams_completed_total": nStreams,
		"arbalestd_streams_failed_total":    0,
		"arbalestd_stream_corruption_total": 0,
		"arbalestd_stream_events_total":     float64(nStreams) * float64(total),
	} {
		smp, ok := promtest.Find(fams, name, nil)
		if !ok || smp.Value != want {
			t.Errorf("%s = %v (found=%v), want %v", name, smp.Value, ok, want)
		}
	}
	if smp, ok := promtest.Find(fams, "arbalestd_stream_checkpoints_written_total", nil); !ok || smp.Value == 0 {
		t.Error("no checkpoints were cut during the chaos run")
	}
	if smp, ok := promtest.Find(fams, "arbalestd_stream_bytes_total", nil); !ok || smp.Value == 0 {
		t.Error("stream byte counter did not move")
	}
	if smp, ok := promtest.Find(fams, "arbalestd_stream_chunk_decode_seconds_count", nil); !ok || smp.Value == 0 {
		t.Error("chunk decode histogram saw no observations")
	}
}

// TestStreamHTTPDaemonRecovery kills a daemon with a live, checkpointed
// session mid-stream and boots a new one over the same spool: the session
// must come back live at its acknowledged cursor, accept the client's
// resumed upload, and settle with findings identical to batch replay.
func TestStreamHTTPDaemonRecovery(t *testing.T) {
	dir := t.TempDir()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	jnl1, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The first daemon is never started or shut down: the test drops it on
	// the floor mid-session, exactly like a SIGKILL.
	s1 := New(Config{Workers: 1, Journal: jnl1, CheckpointEvery: 4})
	srv1 := httptest.NewServer(s1.Handler())
	client := &http.Client{Timeout: time.Minute}

	view := openStream(t, client, srv1.URL, "arbalest")
	half := len(tr.Events) / 2
	body := trace.StreamHeader()
	for i := 0; i < half; i++ {
		if body, err = trace.AppendEventFrame(body, &tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Post(srv1.URL+"/v1/streams/"+view.ID+"/events", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeStreamView(t, resp); v.Events != uint64(half) {
		t.Fatalf("first daemon acknowledged %d events, want %d", v.Events, half)
	}
	srv1.Close() // the kill

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Journal: jnl2, CheckpointEvery: 4})
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer shutdownOrFail(t, s2)
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	url := srv2.URL + "/v1/streams/" + view.ID

	v, code, err := getStreamView(client, url)
	if err != nil || code != http.StatusOK {
		t.Fatalf("recovered session fetch: %d, %v", code, err)
	}
	if v.Status != stream.StatusLive || v.Events != uint64(half) {
		t.Fatalf("recovered session: %+v, want live at event %d", v, half)
	}
	if v.ResumedFrom == 0 {
		t.Fatal("recovered session does not record its checkpoint resume point")
	}

	// The client resumes from the acknowledged cursor (over-sending the
	// whole stream would work too; the suffix is what -stream sends).
	resp, err = client.Post(url+"/events", "application/octet-stream", bytes.NewReader(frameStreamBody(t, tr, int(v.Events))))
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeStreamView(t, resp); v.Events != uint64(len(tr.Events)) {
		t.Fatalf("resumed upload acknowledged %d events, want %d", v.Events, len(tr.Events))
	}
	resp, err = client.Post(url+"/close", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	final := decodeStreamView(t, resp)
	if final.Status != stream.StatusDone || final.Result == nil {
		t.Fatalf("resumed session settled wrong: %+v", final)
	}
	got := renderedSummary(final.Result)
	wantReports := renderedSummary(want)
	if len(got) != len(wantReports) {
		t.Fatalf("resumed session: %d findings, batch has %d\ngot: %q\nwant: %q", len(got), len(wantReports), got, wantReports)
	}
	for i := range wantReports {
		if got[i] != wantReports[i] {
			t.Fatalf("resumed finding %d differs\nstreamed: %s\nbatch:    %s", i, got[i], wantReports[i])
		}
	}
	fams := scrapeMetrics(t, client, srv2.URL)
	if smp, ok := promtest.Find(fams, "arbalestd_streams_recovered_total", nil); !ok || smp.Value != 1 {
		t.Fatalf("recovered counter: %+v found=%v, want 1", smp, ok)
	}
}
