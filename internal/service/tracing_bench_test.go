// BenchmarkServiceReplay measures the full submit-to-settled path with
// tracing enabled vs disabled. CI's trace-overhead gate compares the two
// in-run — same binary, same machine, interleaved — so the assertion
// ("tracing costs nothing measurable on the replay hot path; disabling it
// restores the pre-tracing baseline") never depends on cross-machine
// nanosecond comparisons.
package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/trace"
)

// benchRecordTrace records DRACC benchmark id for benchmarking.
func benchRecordTrace(b *testing.B, id int) *trace.Trace {
	b.Helper()
	bench := dracc.ByID(id)
	if bench == nil {
		b.Fatalf("no DRACC benchmark %d", id)
	}
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumDevices: bench.Devices, NumThreads: 2, ForceSync: true}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		bench.Run(c)
		return nil
	})
	return rec.Trace()
}

func benchServiceReplay(b *testing.B, traceCapacity int) {
	tr := benchRecordTrace(b, 22)
	s := New(Config{Workers: 1, QueueSize: 64, TraceCapacity: traceCapacity})
	s.Start()
	b.Cleanup(func() { shutdownOrFailB(b, s) })
	b.ReportAllocs()
	b.ResetTimer()
	var replayNanos int64
	for i := 0; i < b.N; i++ {
		v, err := s.Submit("arbalest", tr)
		if err != nil {
			b.Fatal(err)
		}
		for {
			jv, ok := s.Job(v.ID)
			if !ok {
				b.Fatalf("job %s disappeared", v.ID)
			}
			if jv.Status == StatusDone {
				replayNanos += jv.WallNanos
				break
			}
			if jv.Status == StatusFailed {
				b.Fatalf("job failed: %s", jv.Error)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// The replay wall as the job itself measured it: the hot path alone,
	// without submit/queue/poll scheduling noise — what the CI overhead
	// gate compares.
	b.ReportMetric(float64(replayNanos)/float64(b.N), "replay-ns/op")
}

func shutdownOrFailB(b *testing.B, s *Service) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.Fatalf("shutdown: %v", err)
	}
}

func BenchmarkServiceReplay(b *testing.B) {
	b.Run("tracing-on", func(b *testing.B) { benchServiceReplay(b, 0) })
	b.Run("tracing-off", func(b *testing.B) { benchServiceReplay(b, -1) })
}
