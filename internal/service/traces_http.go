// The queryable trace API over the daemon's bounded trace store:
//
//	GET /v1/traces             list stored traces (summaries, oldest first)
//	GET /v1/traces/{id}        one merged trace tree (?format=otlp for the
//	                           OTLP/JSON encoding of just that trace)
//	GET /v1/traces/export      every stored trace as one OTLP/JSON
//	                           ExportTraceServiceRequest, for collectors
//
// With tracing disabled (Config.TraceCapacity < 0) the listing is empty and
// lookups answer 404 — the endpoints stay mounted so clients need no
// capability probe.
package service

import (
	"errors"
	"net/http"

	"repro/internal/telemetry"
)

// otlpServiceName is the resource service.name exported traces claim.
const otlpServiceName = "arbalestd"

// handleTraces serves GET /v1/traces.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	list := s.traces.List()
	if list == nil {
		list = []telemetry.TraceSummary{}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}{Traces: list})
}

// handleTraceGet serves GET /v1/traces/{id}.
func (s *Service) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	root := s.traces.Get(r.PathValue("id"))
	if root == nil {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such trace"))
		return
	}
	if r.URL.Query().Get("format") == "otlp" {
		s.writeJSON(w, http.StatusOK, telemetry.OTLP(otlpServiceName, []*telemetry.Span{root}))
		return
	}
	s.writeJSON(w, http.StatusOK, root)
}

// handleTracesExport serves GET /v1/traces/export.
func (s *Service) handleTracesExport(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, telemetry.OTLP(otlpServiceName, s.traces.Roots()))
}
