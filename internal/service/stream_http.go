package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// maxFindingsWait caps the ?wait= long-poll on the findings endpoint so a
// client cannot pin a handler goroutine indefinitely.
const maxFindingsWait = 30 * time.Second

// streamStatus maps a stream package error to its HTTP status.
func streamStatus(err error) int {
	switch {
	case errors.Is(err, stream.ErrSaturated),
		errors.Is(err, tenant.ErrThrottled),
		errors.Is(err, tenant.ErrStreamQuota),
		errors.Is(err, tenant.ErrByteQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, stream.ErrBusy), errors.Is(err, stream.ErrTerminal):
		return http.StatusConflict
	case errors.Is(err, stream.ErrBudget):
		return http.StatusRequestEntityTooLarge
	default: // corrupt input, unknown tool, and other validation failures
		return http.StatusBadRequest
	}
}

// handleStreamOpen admits a new streaming session (POST /v1/streams) under
// the caller's tenant identity: the open spends a tenant rate-limit token
// and a concurrent-stream slot, and the refusal metrics account the attempt
// to exactly one of admitted, throttled, or rejected.
func (s *Service) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	toolName := r.URL.Query().Get("tool")
	if toolName == "" {
		toolName = "arbalest"
	}
	tname := s.tenants.Get(r.Header.Get(tenant.Header)).Name()
	view, err := s.hub.OpenAs(toolName, r.Header.Get(telemetry.TraceparentHeader), tname)
	if err != nil {
		switch {
		case errors.Is(err, tenant.ErrThrottled):
			s.metrics.tenantThrottled.With(tname).Inc()
		case errors.Is(err, tenant.ErrStreamQuota), errors.Is(err, stream.ErrSaturated):
			s.metrics.tenantRejected.With(tname, "streams").Inc()
		case errors.Is(err, tenant.ErrByteQuota):
			s.metrics.tenantRejected.With(tname, "bytes").Inc()
		}
		status := streamStatus(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfterSeconds(err))
		}
		s.writeError(w, status, err)
		return
	}
	s.metrics.tenantAdmitted.With(view.Tenant).Inc()
	s.writeJSON(w, http.StatusCreated, view)
}

func (s *Service) handleStreamList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Streams []stream.View `json:"streams"`
	}{Streams: s.hub.List()})
}

func (s *Service) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.hub.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	s.writeJSON(w, http.StatusOK, sess.View())
}

// handleStreamEvents is the ingest endpoint: the request body is a complete
// framed event stream (header plus frames), read in chunks and decoded
// incrementally — the analyzer advances while the body is still arriving.
// Duplicate events from a client resume are skipped by sequence number, so
// re-POSTing a suffix (or the whole stream) after a disconnect is safe.
func (s *Service) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.hub.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	if err := sess.StartIngest(); err != nil {
		s.writeError(w, streamStatus(err), err)
		return
	}
	defer sess.EndIngest()
	rc := http.NewResponseController(w)
	buf := make([]byte, 256<<10)
	for {
		if s.cfg.StreamReadTimeout > 0 {
			// Rolling deadline: each chunk gets the full window, so a slow
			// consumer is detected without bounding total session length.
			_ = rc.SetReadDeadline(time.Now().Add(s.cfg.StreamReadTimeout))
		}
		if err := faultinject.Fire("stream.read"); err != nil {
			// Simulated mid-body disconnect: abandon the request exactly as a
			// dropped TCP connection would. The session stays live for resume.
			panic(http.ErrAbortHandler)
		}
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			if ferr := sess.Feed(buf[:n]); ferr != nil {
				if errors.Is(ferr, stream.ErrBudget) {
					s.hub.Evict(sess, "budget")
				}
				status := streamStatus(ferr)
				if status == http.StatusTooManyRequests {
					// Tenant byte quota: shared occupancy that frees as the
					// tenant's other work drains. The session stays live and
					// the client re-sends the chunk after the hint.
					w.Header().Set("Retry-After", retryAfterSeconds(ferr))
				}
				s.writeError(w, status, ferr)
				return
			}
		}
		switch {
		case rerr == nil:
			continue
		case errors.Is(rerr, io.EOF):
			if ferr := sess.FinishIngest(); ferr != nil {
				s.writeError(w, http.StatusBadRequest, ferr)
				return
			}
			s.writeJSON(w, http.StatusOK, sess.View())
			return
		case isTimeout(rerr):
			// The client stopped sending but kept the connection open: a
			// slow consumer holding a session slot. Evict it.
			s.hub.Evict(sess, "slow")
			s.writeError(w, http.StatusRequestTimeout, fmt.Errorf("service: stream read timed out: %w", rerr))
			return
		default:
			// The connection died mid-body; there is usually nobody left to
			// answer. The session stays live and the client resumes from
			// View.Events on a fresh request.
			return
		}
	}
}

// isTimeout reports whether a body read failed by deadline rather than by
// disconnect.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleStreamClose finishes a session cleanly and returns its summary.
// Closing an already-terminal session is idempotent: it answers 200 with
// the settled view rather than an error, so a client retrying a close that
// raced a crash gets its result.
func (s *Service) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.hub.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	view, err := sess.Finalize()
	switch {
	case err == nil, errors.Is(err, stream.ErrTerminal):
		s.writeJSON(w, http.StatusOK, view)
	default:
		s.writeError(w, streamStatus(err), err)
	}
}

// handleStreamAbort ends a session at the client's request and discards its
// journal state.
func (s *Service) handleStreamAbort(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.hub.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	sess.Abort()
	s.writeJSON(w, http.StatusOK, sess.View())
}

// handleStreamFindings serves a session's findings from the ?since= cursor
// on. With ?wait=<duration> it long-polls: the response is held until a
// finding past the cursor arrives, the session goes terminal, or the wait
// (capped at 30s) expires — then with an empty page whose next cursor the
// client re-polls from.
func (s *Service) handleStreamFindings(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.hub.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	q := r.URL.Query()
	since := 0
	if v := q.Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad since cursor %q", v))
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad wait duration %q", v))
			return
		}
		wait = min(d, maxFindingsWait)
	}
	if wait > 0 {
		s.writeJSON(w, http.StatusOK, sess.WaitFindings(r.Context(), since, wait))
		return
	}
	s.writeJSON(w, http.StatusOK, sess.Findings(since))
}
