// Fleet backend: the dist.Backend seam the coordinator drives.
//
// With Config.ExternalDispatch set, Start launches no inline workers and
// the coordinator (internal/dist) becomes the only consumer of the job
// queue. The methods here give it exactly the pieces runJob owns in the
// single-process daemon — the running transition, checkpoint custody, and
// the terminal bookkeeping — so a job finished by a remote worker is
// indistinguishable (journal marks, metrics, retention, span-free like a
// recovered job) from one finished inline.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/tools"
	"repro/internal/trace"
)

// DequeueJob hands the next accepted job to the coordinator, blocking until
// one arrives. Jobs surface in weighted-fair order with deadline and
// overload shedding applied at the pop, exactly as for inline workers.
// ok=false means ctx was canceled or the service is shutting down with the
// queue drained.
func (s *Service) DequeueJob(ctx context.Context) (dist.JobSpec, bool) {
	j, ok := s.dequeue(ctx)
	if !ok {
		return dist.JobSpec{}, false
	}
	weight := s.tenants.Get(j.tenant).Weight()
	s.mu.Lock()
	spec := dist.JobSpec{ID: j.id, Tool: j.tool, Events: j.events, Tenant: j.tenant, Weight: weight}
	s.mu.Unlock()
	return spec, true
}

// RunJobInline analyzes the job on the calling goroutine through the
// single-process path (degraded mode: zero live workers).
func (s *Service) RunJobInline(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.status == StatusDone || j.status == StatusFailed {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.runJob(j)
}

// MarkJobRunning transitions the job to running for a remote lease holder,
// journaling the transition. False means the job is gone or already
// terminal and the lease must not be granted.
func (s *Service) MarkJobRunning(id, worker string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.status == StatusDone || j.status == StatusFailed {
		s.mu.Unlock()
		return false
	}
	// A re-lease after expiry arrives with the job already running; keep
	// the original start time so queue-wait isn't counted twice.
	if j.status != StatusRunning {
		j.status = StatusRunning
		j.started = time.Now()
		if qs := j.span.Child("queue"); qs != nil {
			qs.EndAt(j.started)
		}
		if !j.enqueued.IsZero() {
			s.metrics.queueWait.ObserveDuration(j.started.Sub(j.enqueued))
		}
	}
	s.publishTraceLocked(j)
	hook := s.testHookRunning
	s.mu.Unlock()
	s.mark(j, journal.StatusRunning, "", nil)
	if hook != nil {
		hook(id)
	}
	return true
}

// StoreRemoteCheckpoint ingests a worker's epoch-barrier checkpoint:
// monotone per job (stale ones are dropped silently — the analysis moved
// on) and spooled through the journal so a coordinator restart resumes
// remote jobs from it.
func (s *Service) StoreRemoteCheckpoint(ck *trace.Checkpoint) error {
	s.mu.Lock()
	j, ok := s.jobs[ck.JobID]
	if !ok {
		s.mu.Unlock()
		return dist.ErrNoJob
	}
	if j.status == StatusDone || j.status == StatusFailed {
		s.mu.Unlock()
		return nil // terminal: the checkpoint is obsolete, not an error
	}
	if j.ckpt != nil && ck.NextEvent < j.ckpt.NextEvent {
		s.mu.Unlock()
		return nil
	}
	j.ckpt = ck
	s.mu.Unlock()
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.WriteCheckpoint(ck); err != nil {
			// The in-memory copy still serves rescheduling within this
			// coordinator life; only restart durability is degraded.
			s.metrics.checkpointErrors.Inc()
			s.metrics.journalError("checkpoint")
			s.jobLogger(j).Error("remote checkpoint spool failed", "phase", "fleet", "err", err)
		}
	}
	s.metrics.checkpointsWritten.Inc()
	s.metrics.checkpointBytes.Observe(float64(len(ck.State)))
	return nil
}

// CompleteRemote records a remote job's terminal state exactly once,
// mirroring runJob's epilogue: result/error, journal mark, metrics,
// retention GC, checkpoint removal. A second completion (a zombie's result
// racing the rescheduled run) fails with an error instead of overwriting.
func (s *Service) CompleteRemote(id, errMsg string, result json.RawMessage) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return dist.ErrNoJob
	}
	if j.status == StatusDone || j.status == StatusFailed {
		s.mu.Unlock()
		return fmt.Errorf("dist backend: job %s already terminal (%s)", id, j.status)
	}
	j.finished = time.Now()
	if !j.started.IsZero() {
		j.wall = j.finished.Sub(j.started)
	}
	events := j.events
	j.tr = nil
	j.ckpt = nil
	var summary *tools.Summary
	if errMsg != "" {
		j.status = StatusFailed
		j.errMsg = errMsg
	} else {
		j.status = StatusDone
		if len(result) > 0 {
			var sum tools.Summary
			if err := json.Unmarshal(result, &sum); err == nil {
				summary = &sum
				j.result = summary
			} else {
				s.jobLogger(j).Error("remote result unmarshal failed", "phase", "fleet", "err", err)
			}
		}
	}
	if j.span != nil {
		if errMsg != "" {
			j.span.SetError(errMsg)
		}
		j.span.EndAt(j.finished)
	}
	s.releaseQuotaLocked(j)
	s.publishTraceLocked(j)
	s.metrics.jobSeconds.ObserveDuration(j.finished.Sub(j.submitted))
	s.gcLocked(j.finished)
	s.mu.Unlock()

	if errMsg != "" {
		s.metrics.jobsFailed.Inc()
		s.mark(j, journal.StatusFailed, errMsg, nil)
	} else {
		s.metrics.jobsCompleted.Inc()
		s.metrics.eventsReplayed.Add(uint64(events))
		if summary != nil {
			s.metrics.recordJobStats(summary.Stats)
		}
		s.mark(j, journal.StatusDone, "", result)
	}
	if s.cfg.Journal != nil {
		if rerr := s.cfg.Journal.RemoveCheckpoint(id); rerr != nil {
			s.metrics.journalError("remove")
			s.jobLogger(j).Error("checkpoint remove failed", "phase", "gc", "err", rerr)
		}
	}
	return nil
}

// FreshCheckpoint returns the job's newest checkpoint, nil when it must
// replay from scratch.
func (s *Service) FreshCheckpoint(id string) *trace.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.ckpt
	}
	return nil
}

// TraceFramed serializes the job's trace in the CRC-framed wire format for
// a worker to fetch.
func (s *Service) TraceFramed(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var tr *trace.Trace
	if ok {
		tr = j.tr
	}
	s.mu.Unlock()
	if !ok || tr == nil {
		return nil, dist.ErrNoJob
	}
	var buf bytes.Buffer
	if err := tr.SaveFramed(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
