// dist.TraceSink implementation: the service side of fleet-wide span
// shipping. The coordinator opens a "lease" span on the job's trace for
// every grant, workers ship span-tree snapshots back piggybacked on
// heartbeats and results, and the methods here merge them — under
// Service.mu, into the same span tree the single-process path builds — so
// a job analyzed across three processes still reads as one trace at
// GET /v1/traces/{id}.
//
// Everything here is observability-only by construction: merged spans touch
// j.span and the trace store, never job status, checkpoints, results, or
// journal marks. The coordinator also fences before merging, so a zombie
// worker's spans are dropped with its writes (DESIGN.md §5.9).
package service

import (
	"time"

	"repro/internal/telemetry"
)

// Merge bounds: a worker's legitimate span tree is a "worker" root with one
// child per phase, so anything near these caps is a bug or an abusive
// client — the caps keep the trace store's memory bounded either way.
const (
	// maxLeaseChildren caps distinct merged subtrees under one lease span.
	maxLeaseChildren = 64
	// maxMergedSpans caps one shipped subtree's span count.
	maxMergedSpans = 1024
	// maxFencedSpans caps "fenced" annotation spans per job, so a zombie
	// hammering the coordinator cannot grow the trace without bound.
	maxFencedSpans = 16
)

// publishTraceLocked snapshots the job's span tree into the trace store.
// The caller holds s.mu; the store receives an immutable Clone, so readers
// never race the tree still being built.
func (s *Service) publishTraceLocked(j *job) {
	if s.traces == nil || j == nil || j.span == nil || j.span.TraceID == "" {
		return
	}
	s.traces.Put(j.span.TraceID, j.span.Clone())
}

// StartLeaseSpan opens a "lease" span for the grant (worker, token) on the
// job's trace and returns the traceparent the worker parents its spans
// under. Untraced jobs return "" and the fleet protocol carries no trace
// context for them at all.
func (s *Service) StartLeaseSpan(jobID, worker string, token uint64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok || j.span == nil || j.span.TraceID == "" {
		return ""
	}
	ls := j.span.StartChild("lease", time.Time{})
	ls.SetAttr("worker", worker)
	ls.SetCount("token", int64(token))
	if j.leaseSpans == nil {
		j.leaseSpans = make(map[uint64]*telemetry.Span)
	}
	j.leaseSpans[token] = ls
	s.publishTraceLocked(j)
	return telemetry.TraceContext{TraceID: ls.TraceID, SpanID: ls.SpanID, Sampled: true}.Traceparent()
}

// MergeLeaseSpans merges a worker's span-tree snapshots under the lease
// span for (jobID, token). Shipments are cumulative snapshots, not deltas:
// a subtree re-shipped with the same root span ID replaces its previous
// snapshot, so the merge is idempotent across heartbeats.
func (s *Service) MergeLeaseSpans(jobID string, token uint64, spans []*telemetry.Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok || j.leaseSpans == nil {
		return
	}
	ls := j.leaseSpans[token]
	if ls == nil {
		return
	}
	merged := false
	for _, sp := range spans {
		// Reject snapshots that don't belong to this trace or blow the size
		// bounds; span payloads come off the network and must not be able to
		// grow the store arbitrarily.
		if sp == nil || sp.SpanID == "" || sp.TraceID != ls.TraceID || sp.SpanCount() > maxMergedSpans {
			continue
		}
		replaced := false
		for i, c := range ls.Children {
			if c.SpanID == sp.SpanID {
				ls.Children[i] = sp
				replaced = true
				break
			}
		}
		if !replaced && len(ls.Children) < maxLeaseChildren {
			ls.Children = append(ls.Children, sp)
		}
		merged = true
	}
	if merged {
		s.publishTraceLocked(j)
	}
}

// CloseLeaseSpan ends the lease span for (jobID, token): with errMsg=="" on
// an accepted result, otherwise failed (lease expiry, failed result). The
// close is idempotent — only the first close records status and duration.
func (s *Service) CloseLeaseSpan(jobID string, token uint64, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok || j.leaseSpans == nil {
		return
	}
	ls := j.leaseSpans[token]
	if ls == nil || ls.Status != "" {
		return
	}
	if errMsg != "" {
		ls.SetError(errMsg)
	}
	ls.EndAt(time.Time{})
	s.publishTraceLocked(j)
}

// RecordFenced attaches an error span for a write the fencing token
// rejected, so a zombie's rejected heartbeat or result is visible in the
// job's trace next to the retry that superseded it. Works after the job is
// terminal too — that is exactly when zombie results arrive.
func (s *Service) RecordFenced(jobID, worker, op string, token uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok || j.span == nil || j.span.TraceID == "" {
		return
	}
	fenced := 0
	for _, c := range j.span.Children {
		if c.Name == "fenced" {
			fenced++
		}
	}
	if fenced >= maxFencedSpans {
		return
	}
	fs := j.span.StartChild("fenced", time.Time{})
	fs.SetAttr("worker", worker)
	fs.SetAttr("op", op)
	fs.SetCount("token", int64(token))
	fs.SetError("write rejected: stale fencing token")
	fs.EndAt(time.Time{})
	s.publishTraceLocked(j)
}
