package service

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs?tool=<name>  submit a JSON-lines trace; 202 + job JSON.
//	                           An Idempotency-Key header makes retried
//	                           uploads safe: a duplicate returns the
//	                           original job (200) instead of re-analyzing.
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job, including its result when done
//	GET  /v1/jobs/{id}/trace   the job's span tree (accept -> parse ->
//	                           journal -> queue -> replay -> summarize);
//	                           also served at /jobs/{id}/trace
//	GET  /v1/traces            list stored distributed traces (summaries)
//	GET  /v1/traces/{id}       one merged trace tree, spanning every
//	                           process that touched the job or stream
//	                           (?format=otlp for OTLP/JSON)
//	GET  /v1/traces/export     every stored trace as one OTLP/JSON export
//	GET  /v1/fleet/status      federated fleet status: worker liveness,
//	                           lease/fencing counters, queue depths, and
//	                           span-derived job latencies; standalone
//	                           daemons report the inline pool as one
//	                           synthetic worker
//	POST   /v1/streams                 open a live ingestion session;
//	                                   201 + session JSON, 429 at the cap
//	GET    /v1/streams                 list sessions
//	GET    /v1/streams/{id}            one session (Events is the resume
//	                                   cursor: the sequence number to send
//	                                   next)
//	POST   /v1/streams/{id}/events     ship framed event chunks; the body is
//	                                   a complete framed stream, decoded and
//	                                   analyzed as it arrives. One request
//	                                   at a time per session; duplicates
//	                                   are skipped by sequence number
//	GET    /v1/streams/{id}/findings   findings from ?since= on; ?wait=
//	                                   long-polls until one arrives
//	POST   /v1/streams/{id}/close      finish cleanly; 200 + summary
//	                                   (idempotent)
//	DELETE /v1/streams/{id}            abort and discard journal state
//	GET  /metrics              full telemetry registry, Prometheus text
//	                           format with # HELP/# TYPE
//	GET  /version              daemon build info (version, Go version)
//	GET  /healthz              liveness probe; 503 once shutdown has begun
//	GET  /readyz               readiness probe; 503 when the queue is >=90%
//	                           full, streams are saturated, or the daemon
//	                           is draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/export", s.handleTracesExport)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /v1/fleet/status", s.handleFleetStatus)
	mux.HandleFunc("POST /v1/streams", s.handleStreamOpen)
	mux.HandleFunc("GET /v1/streams", s.handleStreamList)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	mux.HandleFunc("POST /v1/streams/{id}/events", s.handleStreamEvents)
	mux.HandleFunc("GET /v1/streams/{id}/findings", s.handleStreamFindings)
	mux.HandleFunc("POST /v1/streams/{id}/close", s.handleStreamClose)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamAbort)
	mux.HandleFunc("GET /v1/tenants", s.handleTenantList)
	mux.HandleFunc("PUT /v1/tenants/{name}", s.handleTenantSet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleHealthz is the liveness probe. It turns 503 the moment Shutdown
// begins so load balancers stop routing here while accepted jobs drain.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

// ReadyDetail is the structured body GET /readyz answers with: overall
// verdict, every degradation reason (not just the first), queue and stream
// occupancy, journal health, and per-tenant quota saturation — what an
// operator triaging a 503 would otherwise assemble from three endpoints.
type ReadyDetail struct {
	// Status is "ok" or "degraded"; degraded bodies ship with HTTP 503.
	Status string `json:"status"`
	// Reasons lists every active degradation (draining, queue overloaded,
	// streams saturated, journal spool unwritable); empty when ok.
	Reasons       []string `json:"reasons,omitempty"`
	QueueDepth    int      `json:"queueDepth"`
	QueueCapacity int      `json:"queueCapacity"`
	// Streams is the live streaming-session count; StreamsSaturated means
	// the hub is at its session cap.
	Streams          int  `json:"streams"`
	StreamsSaturated bool `json:"streamsSaturated"`
	// JournalWritable is false when the spool probe fails (disk full,
	// permissions); true when healthy or when no journal is configured.
	JournalWritable bool `json:"journalWritable"`
	// Tenants is each tracked tenant's occupancy and quota saturation.
	Tenants []tenant.Usage `json:"tenants,omitempty"`
}

// handleReadyz is the readiness probe: graceful degradation for load
// balancers. It answers 503 while draining, when the job queue is at
// least 90% full (so traffic sheds before submissions start bouncing
// with 429s), and when the journal spool is unwritable (disk full,
// permissions): every accept would fail its write-ahead append anyway,
// so the instance sheds until a spool probe succeeds again. The body is
// a ReadyDetail JSON document either way.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.QueueFullness()
	d := ReadyDetail{
		Status:          "ok",
		QueueDepth:      depth,
		QueueCapacity:   capacity,
		Streams:         s.hub.ActiveCount(),
		JournalWritable: true,
		Tenants:         s.tenants.Snapshot(),
	}
	if s.Draining() {
		d.Reasons = append(d.Reasons, "draining")
	}
	if capacity > 0 && 10*depth >= 9*capacity {
		d.Reasons = append(d.Reasons, "queue overloaded")
	}
	if s.hub.Saturated() {
		d.StreamsSaturated = true
		d.Reasons = append(d.Reasons, "streams saturated")
	}
	if s.cfg.Journal != nil && !s.cfg.Journal.Writable() {
		d.JournalWritable = false
		d.Reasons = append(d.Reasons, "journal spool unwritable")
	}
	status := http.StatusOK
	if len(d.Reasons) > 0 {
		d.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, d)
}

// handleTenantList serves every tracked tenant's usage and limits.
func (s *Service) handleTenantList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Tenants []tenant.Usage `json:"tenants"`
	}{Tenants: s.tenants.Snapshot()})
}

// handleTenantSet tunes one tenant's limits live. The body is a
// tenant.Limits JSON document; omitted fields are zero (unlimited), so a
// PUT replaces the tenant's limits wholesale. The change is journaled
// (tenants.meta) and survives restart.
func (s *Service) handleTenantSet(w http.ResponseWriter, r *http.Request) {
	var lim tenant.Limits
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lim); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	t := s.tenants.Set(r.PathValue("name"), lim)
	s.writeJSON(w, http.StatusOK, t.Usage())
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	accepted := time.Now()
	toolName := r.URL.Query().Get("tool")
	if toolName == "" {
		toolName = "arbalest"
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	tr, err := trace.LoadLimited(body, trace.Limits{
		MaxEvents: s.cfg.MaxEvents,
		MaxBytes:  s.cfg.MaxBodyBytes,
	})
	parseDur := time.Since(accepted)
	s.metrics.parseSeconds.ObserveDuration(parseDur)
	if err != nil {
		// Submit was never reached, so this is the one place this
		// rejection is counted.
		s.countRejected()
		var ce *trace.CorruptionError
		if errors.As(err, &ce) {
			// A framed upload failed its CRC or framing checks; the error
			// already carries the byte offset and reason for the client.
			s.metrics.traceCorruption.Inc()
		}
		var maxErr *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.Is(err, trace.ErrTooManyEvents) || errors.Is(err, trace.ErrTooManyBytes) || errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, err)
		return
	}
	deadline, derr := tenant.ParseDeadline(r.Header.Get(tenant.DeadlineHeader), accepted)
	if derr != nil {
		s.countRejected()
		s.writeError(w, http.StatusBadRequest, derr)
		return
	}
	nbytes := r.ContentLength
	if nbytes < 0 {
		nbytes = 0
	}
	view, duplicate, err := s.SubmitTrace(SubmitOptions{
		Tool:          toolName,
		Key:           r.Header.Get(retry.IdempotencyHeader),
		Start:         accepted,
		ParseDuration: parseDur,
		Traceparent:   r.Header.Get(telemetry.TraceparentHeader),
		Tenant:        r.Header.Get(tenant.Header),
		Deadline:      deadline,
		Bytes:         nbytes,
	}, tr)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			// Give retrying clients a backoff floor instead of letting
			// them hammer a full queue; a throttled tenant gets the token
			// bucket's actual refill horizon.
			w.Header().Set("Retry-After", retryAfterSeconds(err))
		}
		s.writeError(w, status, err)
		return
	}
	status := http.StatusAccepted
	if duplicate {
		// The key matched an already-accepted job: acknowledge it
		// without re-enqueuing anything.
		w.Header().Set("Idempotency-Replayed", "true")
		status = http.StatusOK
	}
	s.writeJSON(w, status, view)
}

// submitStatus maps a Submit error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull),
		errors.Is(err, tenant.ErrThrottled),
		errors.Is(err, tenant.ErrJobQuota),
		errors.Is(err, tenant.ErrStreamQuota),
		errors.Is(err, tenant.ErrByteQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrJournal):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	default: // unknown tool and other validation failures
		return http.StatusBadRequest
	}
}

// retryAfterSeconds renders the Retry-After value for a 429/503: the token
// bucket's refill horizon for a throttled tenant (rounded up to a whole
// second, minimum 1), a flat 1s floor for everything else.
func retryAfterSeconds(err error) string {
	var te *tenant.ThrottledError
	if errors.As(err, &te) {
		if secs := int(math.Ceil(te.RetryAfter.Seconds())); secs > 1 {
			return strconv.Itoa(secs)
		}
	}
	return "1"
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// handleJobTrace serves one job's span tree. A job restored from the
// journal as history has no in-memory span; that answers 404 with a
// distinct message so callers can tell it from an unknown job id.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	span, ok := s.JobTrace(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	if span == nil {
		s.writeError(w, http.StatusNotFound, errors.New("service: job has no trace (recovered from journal)"))
		return
	}
	s.writeJSON(w, http.StatusOK, span)
}

func (s *Service) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, telemetry.Version())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteText(w, s.cfg.Workers); err != nil {
		s.cfg.Logger.Error("write /metrics failed", "phase", "http", "err", err)
	}
}

// writeJSON encodes v as the response body. Encode failures after the
// header is out can't change the status anymore, but they are logged
// rather than dropped so a truncated response is visible in operation.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.cfg.Logger.Error("encode response failed", "phase", "http", "status", status, "err", err)
	}
}

func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
