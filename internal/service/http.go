package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/trace"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs?tool=<name>  submit a JSON-lines trace; 202 + job JSON
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job, including its result when done
//	GET  /metrics              counters, Prometheus text format
//	GET  /healthz              liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	toolName := r.URL.Query().Get("tool")
	if toolName == "" {
		toolName = "arbalest"
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	tr, err := trace.LoadLimited(body, trace.Limits{
		MaxEvents: s.cfg.MaxEvents,
		MaxBytes:  s.cfg.MaxBodyBytes,
	})
	if err != nil {
		s.metrics.jobsRejected.Add(1)
		var maxErr *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.Is(err, trace.ErrTooManyEvents) || errors.Is(err, trace.ErrTooManyBytes) || errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	view, err := s.Submit(toolName, tr)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

// submitStatus maps a Submit error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	default: // unknown tool and other validation failures
		return http.StatusBadRequest
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteText(w, s.cfg.Workers)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
