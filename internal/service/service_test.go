package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dracc"
	"repro/internal/omp"
	"repro/internal/tools"
	"repro/internal/trace"
)

// recordTrace executes DRACC benchmark id under a recorder with the same
// runtime configuration the one-shot harness uses for ARBALEST, and returns
// the trace.
func recordTrace(t *testing.T, id int) *trace.Trace {
	t.Helper()
	b := dracc.ByID(id)
	if b == nil {
		t.Fatalf("no DRACC benchmark %d", id)
	}
	rec := trace.NewRecorder()
	rt := omp.NewRuntime(omp.Config{NumDevices: b.Devices, NumThreads: 2, ForceSync: true}, rec)
	_ = rt.Run(func(c *omp.Context) error {
		b.Run(c)
		return nil
	})
	return rec.Trace()
}

// oneShot replays tr through a fresh analyzer the way the CLI's
// -replay-trace mode does, and returns the summary daemons must match.
func oneShot(t *testing.T, tr *trace.Trace, toolName string) *tools.Summary {
	t.Helper()
	a, err := tools.New(toolName)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replay(a); err != nil {
		t.Fatal(err)
	}
	return tools.Summarize(a)
}

// waitSettled polls until the job reaches done or failed.
func waitSettled(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return JobView{}
}

func shutdownOrFail(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// postTrace submits tr to the daemon URL and returns the HTTP response.
func postTrace(t *testing.T, url, toolName string, tr *trace.Trace) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs?tool="+toolName, "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// TestJobLifecycle: a job moves pending -> running -> done, with timestamps
// and a result attached.
func TestJobLifecycle(t *testing.T) {
	tr := recordTrace(t, 22)

	s := New(Config{Workers: 1, QueueSize: 4})
	running := make(chan string)
	release := make(chan struct{})
	s.testHookRunning = func(id string) {
		running <- id
		<-release
	}
	s.Start()

	view, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if view.Status != StatusPending {
		t.Errorf("at submit: status %q, want %q", view.Status, StatusPending)
	}

	id := <-running
	if id != view.ID {
		t.Errorf("worker picked %q, want %q", id, view.ID)
	}
	if v, _ := s.Job(view.ID); v.Status != StatusRunning {
		t.Errorf("while in worker: status %q, want %q", v.Status, StatusRunning)
	}
	close(release)

	done := waitSettled(t, s, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("settled as %q (error %q), want %q", done.Status, done.Error, StatusDone)
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("done job missing started/finished timestamps")
	}
	if done.Result == nil || done.Result.Issues == 0 {
		t.Errorf("DRACC 22 result %+v, want issues > 0", done.Result)
	}
	if done.Events != len(tr.Events) {
		t.Errorf("events %d, want %d", done.Events, len(tr.Events))
	}
	shutdownOrFail(t, s)
	if got := s.Metrics().Snapshot(); got.JobsAccepted != 1 || got.JobsCompleted != 1 || got.JobsFailed != 0 {
		t.Errorf("metrics %+v, want 1 accepted, 1 completed, 0 failed", got)
	}
}

// TestQueueBackpressure: with one worker held and the queue full, Submit
// fails fast with ErrQueueFull and the HTTP API returns 429.
func TestQueueBackpressure(t *testing.T) {
	tr := recordTrace(t, 1)

	s := New(Config{Workers: 1, QueueSize: 1})
	running := make(chan string)
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func(id string) {
		once.Do(func() {
			running <- id
			<-release
		})
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Job 1 occupies the worker; job 2 fills the one queue slot.
	if _, err := s.Submit("arbalest", tr); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-running
	if _, err := s.Submit("arbalest", tr); err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	if _, err := s.Submit("arbalest", tr); !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit 3: err %v, want ErrQueueFull", err)
	}
	resp := postTrace(t, srv.URL, "arbalest", tr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("POST on full queue: status %d, want 429", resp.StatusCode)
	}
	if got := s.Metrics().Snapshot(); got.JobsRejected != 2 {
		t.Errorf("jobsRejected %d, want 2", got.JobsRejected)
	}
	if got := s.Metrics().Snapshot(); got.QueueDepth != 1 {
		t.Errorf("queueDepth %d, want 1", got.QueueDepth)
	}

	close(release)
	shutdownOrFail(t, s)
}

// TestReplayTimeout: a job whose replay outlives ReplayTimeout is canceled
// and recorded as failed with a deadline error.
func TestReplayTimeout(t *testing.T) {
	tr := recordTrace(t, 22)

	s := New(Config{Workers: 1, ReplayTimeout: time.Nanosecond})
	s.Start()
	view, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := waitSettled(t, s, view.ID)
	if done.Status != StatusFailed {
		t.Fatalf("status %q, want %q", done.Status, StatusFailed)
	}
	if !strings.Contains(done.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("error %q does not mention the deadline", done.Error)
	}
	shutdownOrFail(t, s)
	if got := s.Metrics().Snapshot(); got.JobsFailed != 1 || got.JobsCompleted != 0 {
		t.Errorf("metrics %+v, want 1 failed, 0 completed", got)
	}
}

// TestSubmitValidation: unknown tools and oversized traces are rejected.
func TestSubmitValidation(t *testing.T) {
	tr := recordTrace(t, 1)
	s := New(Config{Workers: 1, MaxEvents: 4})
	s.Start()
	defer shutdownOrFail(t, s)

	if _, err := s.Submit("no-such-tool", tr); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := s.Submit("arbalest", tr); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized trace: err %v, want ErrTooLarge", err)
	}
	if got := s.Metrics().Snapshot(); got.JobsRejected != 2 {
		t.Errorf("jobsRejected %d, want 2", got.JobsRejected)
	}
}

// TestEndToEndHTTP drives the full HTTP surface: submit a recorded DRACC
// trace, poll the job, and check the known diagnostics, listing, and
// metrics.
func TestEndToEndHTTP(t *testing.T) {
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")
	if want.Issues == 0 || want.KindCounts["UUM"] == 0 {
		t.Fatalf("one-shot replay of DRACC 22 found %+v, expected UUM diagnostics", want)
	}

	s := New(Config{Workers: 2})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postTrace(t, srv.URL, "arbalest", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", resp.StatusCode)
	}
	view := decodeView(t, resp)

	settled := waitSettled(t, s, view.ID)
	// Re-read over HTTP so the wire format is what's checked.
	getResp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET job status %d, want 200", getResp.StatusCode)
	}
	got := decodeView(t, getResp)
	if got.Status != StatusDone {
		t.Fatalf("job %q (error %q), want done; settled view %+v", got.Status, got.Error, settled)
	}
	if got.Result.Issues != want.Issues || !reflect.DeepEqual(got.Result.KindCounts, want.KindCounts) {
		t.Errorf("daemon result %d issues %v, one-shot %d issues %v",
			got.Result.Issues, got.Result.KindCounts, want.Issues, want.KindCounts)
	}
	if len(got.Result.Reports) != want.Issues {
		t.Errorf("daemon returned %d reports, want %d", len(got.Result.Reports), want.Issues)
	}

	listResp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != view.ID {
		t.Errorf("listing %+v, want exactly job %s", list.Jobs, view.ID)
	}

	metResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(metResp.Body)
	metResp.Body.Close()
	for _, line := range []string{
		"arbalestd_jobs_accepted_total 1",
		"arbalestd_jobs_completed_total 1",
		"arbalestd_workers 2",
		fmt.Sprintf("arbalestd_events_replayed_total %d", len(tr.Events)),
	} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics output missing %q:\n%s", line, metrics)
		}
	}

	if missing, err := http.Get(srv.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, missing.Body)
		missing.Body.Close()
		if missing.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown job: status %d, want 404", missing.StatusCode)
		}
	}

	badResp, err := http.Post(srv.URL+"/v1/jobs?tool=arbalest", "application/x-ndjson",
		strings.NewReader("{\"kind\":\"access\",\"seq\":0}\nnot json\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, badResp.Body)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST malformed trace: status %d, want 400", badResp.StatusCode)
	}

	shutdownOrFail(t, s)
}

// TestConcurrentJobsMatchOneShot is the acceptance scenario: >= 8 traces
// submitted concurrently over HTTP to a 4-worker daemon, each result equal
// to the one-shot replay of the same trace.
func TestConcurrentJobsMatchOneShot(t *testing.T) {
	// A mix of UUM, BO, USD and correct benchmarks.
	ids := []int{22, 23, 24, 25, 26, 27, 1, 44}
	traces := make([]*trace.Trace, len(ids))
	want := make([]*tools.Summary, len(ids))
	for i, id := range ids {
		traces[i] = recordTrace(t, id)
		want[i] = oneShot(t, traces[i], "arbalest")
	}

	s := New(Config{Workers: 4, QueueSize: 2 * len(ids)})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	jobIDs := make([]string, len(ids))
	var wg sync.WaitGroup
	errc := make(chan error, len(ids))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := traces[i].Save(&buf); err != nil {
				errc <- fmt.Errorf("trace %d: save: %v", ids[i], err)
				return
			}
			resp, err := http.Post(srv.URL+"/v1/jobs?tool=arbalest", "application/x-ndjson", &buf)
			if err != nil {
				errc <- fmt.Errorf("trace %d: %v", ids[i], err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errc <- fmt.Errorf("trace %d: POST status %d", ids[i], resp.StatusCode)
				return
			}
			var v JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errc <- fmt.Errorf("trace %d: decode: %v", ids[i], err)
				return
			}
			jobIDs[i] = v.ID
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for i, id := range ids {
		v := waitSettled(t, s, jobIDs[i])
		if v.Status != StatusDone {
			t.Errorf("DRACC %d: job %q (error %q)", id, v.Status, v.Error)
			continue
		}
		if v.Result.Issues != want[i].Issues || !reflect.DeepEqual(v.Result.KindCounts, want[i].KindCounts) {
			t.Errorf("DRACC %d: daemon %d issues %v, one-shot %d issues %v",
				id, v.Result.Issues, v.Result.KindCounts, want[i].Issues, want[i].KindCounts)
		}
	}

	shutdownOrFail(t, s)
	if got := s.Metrics().Snapshot(); got.JobsCompleted != int64(len(ids)) || got.QueueDepth != 0 {
		t.Errorf("metrics %+v, want %d completed with empty queue", got, len(ids))
	}
}

// TestGracefulShutdownDrains: Shutdown processes every accepted job before
// returning, and later submissions are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	tr := recordTrace(t, 26)

	s := New(Config{Workers: 2, QueueSize: 16})
	s.Start()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 6
	views := make([]JobView, 0, n)
	for i := 0; i < n; i++ {
		v, err := s.Submit("arbalest", tr)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		views = append(views, v)
	}
	shutdownOrFail(t, s)

	for _, v := range views {
		got, ok := s.Job(v.ID)
		if !ok || got.Status != StatusDone {
			t.Errorf("after shutdown: job %s is %q (error %q), want done", v.ID, got.Status, got.Error)
		}
	}
	if _, err := s.Submit("arbalest", tr); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: err %v, want ErrShuttingDown", err)
	}
	resp := postTrace(t, srv.URL, "arbalest", tr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST after shutdown: status %d, want 503", resp.StatusCode)
	}
}
