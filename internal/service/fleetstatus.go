// Federated fleet status: GET /v1/fleet/status aggregates per-worker
// liveness, lease and fencing counters, queue depths, and span-derived job
// latencies into one view. In coordinator mode the worker table comes from
// the coordinator (SetFleetSource); in standalone mode the endpoint
// degrades gracefully by reporting the inline worker pool as one synthetic
// worker, so dashboards and the arbalest -fleet-status client work against
// any role.
package service

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/dist"
)

// FleetSource supplies the coordinator's point-in-time fleet view;
// *dist.Coordinator implements it.
type FleetSource interface {
	FleetSnapshot() dist.FleetSnapshot
}

// SetFleetSource wires the coordinator into GET /v1/fleet/status. Call it
// before serving traffic (the daemon does, right after building the
// coordinator); nil keeps the standalone synthesis.
func (s *Service) SetFleetSource(src FleetSource) {
	s.mu.Lock()
	s.fleetSource = src
	s.mu.Unlock()
}

// LatencySummary is a percentile digest over recorded trace durations.
type LatencySummary struct {
	// Count is how many closed traces the digest covers.
	Count    int   `json:"count"`
	P50Nanos int64 `json:"p50Nanos"`
	P99Nanos int64 `json:"p99Nanos"`
}

// FleetStatus is the body of GET /v1/fleet/status.
type FleetStatus struct {
	// Role is "coordinator" when a fleet source is wired, else "standalone".
	Role string `json:"role"`
	// Workers is the fleet's worker table. Standalone daemons report one
	// synthetic "inline-pool" worker covering the in-process replay pool.
	Workers []dist.WorkerInfo `json:"workers"`
	// Pending and Leased are fleet queue pressure (standalone: Pending is
	// the job queue depth, Leased the jobs currently running inline).
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// QueueDepth/QueueCapacity are the service's admission queue.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// Counters are the coordinator's cumulative dispatch counters (zero in
	// standalone mode, which has no dispatcher).
	Counters dist.FleetCounters `json:"counters"`
	// Traces is how many traces the store currently holds.
	Traces int `json:"traces"`
	// JobLatency digests the durations of closed job traces in the store
	// (p50/p99); nil until at least one traced job finished.
	JobLatency *LatencySummary `json:"jobLatency,omitempty"`
}

// FleetStatus assembles the federated status view.
func (s *Service) FleetStatus() FleetStatus {
	s.mu.Lock()
	src := s.fleetSource
	depth, capacity := s.fq.Len(), s.cfg.QueueSize
	running := 0
	for _, j := range s.jobs {
		if j.status == StatusRunning {
			running++
		}
	}
	s.mu.Unlock()

	st := FleetStatus{
		QueueDepth:    depth,
		QueueCapacity: capacity,
		Traces:        s.traces.Len(),
		JobLatency:    latencySummary(s.traces.DurationsByName("job")),
	}
	if src != nil {
		snap := src.FleetSnapshot()
		st.Role = "coordinator"
		st.Workers = snap.Workers
		st.Pending = snap.Pending
		st.Leased = snap.Leased
		st.Counters = snap.Counters
		return st
	}
	// Standalone: no coordinator, no lease table — report the inline replay
	// pool as one synthetic always-live worker so fleet tooling sees the
	// same shape everywhere.
	st.Role = "standalone"
	st.Workers = []dist.WorkerInfo{{
		ID:       "inline-pool",
		LastSeen: time.Now(),
		Live:     true,
		Leases:   running,
	}}
	st.Pending = depth
	st.Leased = running
	return st
}

// latencySummary digests sorted durations into p50/p99, nil when empty.
func latencySummary(durations []int64) *LatencySummary {
	if len(durations) == 0 {
		return nil
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return &LatencySummary{
		Count:    len(durations),
		P50Nanos: percentile(durations, 50),
		P99Nanos: percentile(durations, 99),
	}
}

// percentile picks the nearest-rank percentile from sorted values.
func percentile(sorted []int64, p int) int64 {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// handleFleetStatus serves GET /v1/fleet/status.
func (s *Service) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.FleetStatus())
}
