package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/promtest"
)

// TestEndToEndTelemetry drives a real DRACC trace through the daemon over
// HTTP and checks the full observability surface: the per-job span tree,
// the analyzer-level stats in the result, and a /metrics payload that
// survives the test-local Prometheus parser's structural validation.
func TestEndToEndTelemetry(t *testing.T) {
	tr := recordTrace(t, 22)

	s := New(Config{Workers: 2, AnalyzerStats: true})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postTrace(t, srv.URL, "arbalest", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", resp.StatusCode)
	}
	view := decodeView(t, resp)
	settled := waitSettled(t, s, view.ID)
	if settled.Status != StatusDone {
		t.Fatalf("job %q (error %q), want done", settled.Status, settled.Error)
	}

	// The job view embeds the span tree and analyzer stats.
	if settled.Trace == nil {
		t.Fatal("settled job view has no trace")
	}
	if settled.Result == nil || settled.Result.Stats == nil {
		t.Fatalf("settled job has no analyzer stats: %+v", settled.Result)
	}
	st := settled.Result.Stats
	if st.Accesses == 0 || len(st.VSMTransitions) == 0 || st.IntervalLookups == 0 {
		t.Fatalf("analyzer stats look empty: %+v", st)
	}

	// GET /v1/jobs/{id}/trace returns the same tree, and its phases are
	// consistent: every expected child present, durations within the
	// job's end-to-end wall time.
	span := getSpan(t, srv.URL+"/v1/jobs/"+view.ID+"/trace")
	if span.Name != "job" || span.DurationNanos <= 0 {
		t.Fatalf("bad root span: %+v", span)
	}
	for _, phase := range []string{"parse", "queue", "replay", "summarize"} {
		if span.Child(phase) == nil {
			t.Errorf("span tree missing %q child: %+v", phase, span.Children)
		}
	}
	if sum := span.ChildrenNanos(); sum > span.DurationNanos {
		t.Errorf("phase durations %dns exceed job end-to-end %dns", sum, span.DurationNanos)
	}
	if replay := span.Child("replay"); replay != nil {
		if replay.Counts["events"] != int64(len(tr.Events)) {
			t.Errorf("replay span counted %d events, want %d", replay.Counts["events"], len(tr.Events))
		}
		if replay.DurationNanos != settled.WallNanos {
			t.Errorf("replay span %dns != job wall %dns", replay.DurationNanos, settled.WallNanos)
		}
	}
	// The /jobs alias serves the same resource.
	alias := getSpan(t, srv.URL+"/jobs/"+view.ID+"/trace")
	if alias.DurationNanos != span.DurationNanos {
		t.Errorf("alias span differs: %d != %d", alias.DurationNanos, span.DurationNanos)
	}

	// /metrics passes structural validation and carries the histograms
	// and analyzer counters the job must have fed.
	body := getBody(t, srv.URL+"/metrics")
	fams, err := promtest.Validate(body)
	if err != nil {
		t.Fatalf("/metrics failed validation: %v\n%s", err, body)
	}
	for name, want := range map[string]float64{
		"arbalestd_queue_wait_seconds_count":      1,
		"arbalestd_replay_duration_seconds_count": 1,
		"arbalestd_parse_duration_seconds_count":  1,
		"arbalestd_job_duration_seconds_count":    1,
		"arbalestd_jobs_completed_total":          1,
	} {
		s, ok := promtest.Find(fams, name, nil)
		if !ok || s.Value != want {
			t.Errorf("%s = %+v (found %v), want %v", name, s, ok, want)
		}
	}
	// Every transition the job reported must be on /metrics with the
	// same count.
	for _, tr := range st.VSMTransitions {
		s, ok := promtest.Find(fams, "arbalestd_vsm_transitions_total",
			map[string]string{"from": tr.From, "to": tr.To})
		if !ok || uint64(s.Value) != tr.Count {
			t.Errorf("vsm_transitions{%s,%s} = %+v (found %v), want %d", tr.From, tr.To, s, ok, tr.Count)
		}
	}
	if s, ok := promtest.Find(fams, "arbalestd_interval_lookups_total", nil); !ok || s.Value == 0 {
		t.Errorf("interval_lookups_total = %+v (found %v), want > 0", s, ok)
	}
	if _, ok := promtest.Find(fams, "arbalestd_shadow_cas_retries_total", nil); !ok {
		t.Error("shadow_cas_retries_total missing")
	}
	if _, ok := promtest.Find(fams, "arbalestd_replay_nanoseconds_total", nil); ok {
		t.Error("deprecated replay_nanoseconds_total still exposed after its removal release")
	}
	if s, ok := promtest.Find(fams, "arbalestd_replay_shards_count", nil); !ok || s.Value != 1 {
		t.Errorf("replay_shards_count = %+v (found %v), want 1", s, ok)
	}
	bi := telemetry.Version()
	if _, ok := promtest.Find(fams, "arbalestd_build_info",
		map[string]string{"goversion": bi.GoVersion, "version": bi.Version}); !ok {
		t.Error("build_info series missing")
	}

	// GET /version matches the build info the gauge is labeled with.
	var gotBI telemetry.BuildInfo
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/version")), &gotBI); err != nil {
		t.Fatalf("decode /version: %v", err)
	}
	if gotBI != bi {
		t.Errorf("/version = %+v, want %+v", gotBI, bi)
	}
}

// TestTraceEndpointNotFound distinguishes an unknown job from one that
// exists without a span.
func TestTraceEndpointNotFound(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/job-999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d, want 404", resp.StatusCode)
	}
}

// TestStatsDisabledByDefault: without Config.AnalyzerStats the result has
// no stats block — the instrumentation stays dormant.
func TestStatsDisabledByDefault(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1})
	s.Start()
	defer shutdownOrFail(t, s)

	view, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	settled := waitSettled(t, s, view.ID)
	if settled.Status != StatusDone {
		t.Fatalf("job %q (error %q), want done", settled.Status, settled.Error)
	}
	if settled.Result.Stats != nil {
		t.Fatalf("stats collected without opt-in: %+v", settled.Result.Stats)
	}
	if settled.Trace == nil || settled.Trace.Child("replay") == nil {
		t.Fatalf("span tree should exist regardless of stats: %+v", settled.Trace)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d, want 200", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getSpan(t *testing.T, url string) *telemetry.Span {
	t.Helper()
	var span telemetry.Span
	if err := json.Unmarshal([]byte(getBody(t, url)), &span); err != nil {
		t.Fatalf("decode span from %s: %v", url, err)
	}
	return &span
}
