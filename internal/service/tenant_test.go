// Tenant admission tests: a rate-limited tenant is answered 429 with a
// Retry-After hint and — using the exact classification the arbalest client
// applies in -submit and -stream modes — backs off and succeeds on retry,
// while a second, well-behaved tenant proceeds immediately the whole time.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/retry"
	"repro/internal/stream"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// postTraceAs submits tr under the given tenant identity.
func postTraceAs(t *testing.T, url, toolName string, tr *trace.Trace, tenantName string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs?tool="+toolName, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if tenantName != "" {
		req.Header.Set(tenant.Header, tenantName)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// drainBody discards and closes a response body so the connection can be
// reused.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// retryAfterHeader asserts the response carries a whole-second Retry-After
// of at least one second and returns it.
func retryAfterHeader(t *testing.T, resp *http.Response) time.Duration {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", v)
	}
	return time.Duration(secs) * time.Second
}

// TestTenantThrottledSubmitBacksOff: with tenant "hog" limited to a burst
// of one submission, its second upload is throttled with a Retry-After
// hint; retried with the client's policy it backs off at least that long
// and then succeeds, while tenant "polite" submits without delay during
// the hog's penalty window.
func TestTenantThrottledSubmitBacksOff(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{
		Workers:   1,
		QueueSize: 64,
		TenantLimits: map[string]tenant.Limits{
			// One token, refilled every 500ms: the second back-to-back
			// submission is always throttled and Retry-After rounds up to 1s.
			"hog": {Rate: 2, Burst: 1},
		},
	})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Spend the burst token.
	resp := postTraceAs(t, srv.URL, "arbalest", tr, "hog")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first hog submit: status %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	drainBody(resp)

	// The next submission must be throttled with a backoff hint.
	resp = postTraceAs(t, srv.URL, "arbalest", tr, "hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second hog submit: status %d, want 429", resp.StatusCode)
	}
	hint := retryAfterHeader(t, resp)
	drainBody(resp)

	// Retry exactly the way `arbalest -submit` classifies responses. The
	// first attempt is throttled again, so success requires honoring the
	// server's hint.
	start := time.Now()
	var attempts, throttled int
	err := retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}.Do(
		context.Background(), func(attempt int) error {
			attempts++
			resp := postTraceAs(t, srv.URL, "arbalest", tr, "hog")
			defer drainBody(resp)
			if retry.StatusRetryable(resp.StatusCode) {
				throttled++
				return retry.After(fmt.Errorf("status %d", resp.StatusCode), retry.RetryAfter(resp))
			}
			if resp.StatusCode != http.StatusAccepted {
				return retry.Permanent(fmt.Errorf("status %d", resp.StatusCode))
			}
			return nil
		})
	if err != nil {
		t.Fatalf("hog retry loop: %v", err)
	}
	elapsed := time.Since(start)
	if throttled == 0 {
		t.Fatal("hog retry loop was never throttled; the backoff path went unexercised")
	}
	// The policy's own jittered backoff tops out at 10ms, so an elapsed
	// time near the hint proves the server-directed delay was honored.
	if elapsed < hint-100*time.Millisecond {
		t.Fatalf("hog succeeded after %v with %d attempts; Retry-After %v was not honored", elapsed, attempts, hint)
	}

	// The polite tenant was never in the hog's penalty box.
	politeStart := time.Now()
	resp = postTraceAs(t, srv.URL, "arbalest", tr, "polite")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("polite submit: status %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	drainBody(resp)
	if d := time.Since(politeStart); d > hint {
		t.Fatalf("polite submit took %v, should not wait out the hog's %v penalty", d, hint)
	}
}

// TestTenantThrottledStreamOpenBacksOff is the -stream mode counterpart:
// a throttled stream open carries Retry-After, the client's retry loop
// honors it, and a second tenant opens sessions unimpeded meanwhile.
func TestTenantThrottledStreamOpenBacksOff(t *testing.T) {
	s := New(Config{
		Workers:    1,
		QueueSize:  8,
		MaxStreams: 16,
		TenantLimits: map[string]tenant.Limits{
			"hog": {Rate: 2, Burst: 1},
		},
	})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	open := func(tenantName string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/streams?tool=arbalest", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenantName != "" {
			req.Header.Set(tenant.Header, tenantName)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := open("hog")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first hog open: status %d, want %d", resp.StatusCode, http.StatusCreated)
	}
	var view stream.View
	decodeJSON(t, resp, &view)
	if view.Tenant != "hog" {
		t.Fatalf("session tenant = %q, want hog", view.Tenant)
	}

	resp = open("hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second hog open: status %d, want 429", resp.StatusCode)
	}
	hint := retryAfterHeader(t, resp)
	drainBody(resp)

	start := time.Now()
	var throttled int
	err := retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}.Do(
		context.Background(), func(attempt int) error {
			resp := open("hog")
			defer drainBody(resp)
			if retry.StatusRetryable(resp.StatusCode) {
				throttled++
				return retry.After(fmt.Errorf("status %d", resp.StatusCode), retry.RetryAfter(resp))
			}
			if resp.StatusCode != http.StatusCreated {
				return retry.Permanent(fmt.Errorf("status %d", resp.StatusCode))
			}
			return nil
		})
	if err != nil {
		t.Fatalf("hog stream-open retry loop: %v", err)
	}
	if throttled == 0 {
		t.Fatal("hog stream-open retry loop was never throttled")
	}
	if elapsed := time.Since(start); elapsed < hint-100*time.Millisecond {
		t.Fatalf("hog stream open succeeded after %v; Retry-After %v was not honored", elapsed, hint)
	}

	politeStart := time.Now()
	resp = open("polite")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("polite open: status %d, want %d", resp.StatusCode, http.StatusCreated)
	}
	drainBody(resp)
	if d := time.Since(politeStart); d > hint {
		t.Fatalf("polite stream open took %v, should not inherit the hog's penalty", d)
	}
}

// TestTenantDeadlineShed: a job whose client deadline has already passed
// when it reaches the front of the queue is failed as shed, never replayed.
func TestTenantDeadlineShed(t *testing.T) {
	tr := recordTrace(t, 22)
	s := New(Config{Workers: 1, QueueSize: 8})
	// Hold the single worker hostage on the first job so the deadline job
	// expires while still queued.
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func(id string) {
		once.Do(func() {
			close(gate)
			<-release
		})
	}
	s.Start()
	defer shutdownOrFail(t, s)

	if _, err := s.Submit("arbalest", tr); err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	<-gate

	view, _, err := s.SubmitTrace(SubmitOptions{
		Tool:     "arbalest",
		Deadline: time.Now().Add(20 * time.Millisecond),
	}, tr)
	if err != nil {
		t.Fatalf("deadline submit: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)

	got := waitSettled(t, s, view.ID)
	if got.Status != StatusFailed {
		t.Fatalf("expired job status = %s, want %s", got.Status, StatusFailed)
	}
	if !strings.Contains(got.Error, "deadline expired") || got.Result != nil {
		t.Fatalf("expired job: error=%q result=%v, want deadline-shed failure with no result", got.Error, got.Result)
	}
}

// decodeJSON decodes a 2xx response body into v.
func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
}
