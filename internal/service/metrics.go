package service

import (
	"io"

	"repro/internal/telemetry"
	"repro/internal/tools"
)

// ShardBuckets is the bucket layout for the replay-shard histogram:
// powers of two spanning 1 (sequential) through a large worker pool.
var ShardBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Metrics is the service's metric surface, backed by a telemetry.Registry
// rendered at GET /metrics in the Prometheus text exposition format (with
// # HELP/# TYPE lines). Counter and gauge updates are single atomic
// operations; histograms observe with one atomic add plus a CAS on the
// running sum.
type Metrics struct {
	reg *telemetry.Registry

	jobsAccepted     *telemetry.Counter
	jobsCompleted    *telemetry.Counter
	jobsFailed       *telemetry.Counter
	jobsRejected     *telemetry.Counter
	jobsPanicked     *telemetry.Counter
	jobsRecovered    *telemetry.Counter
	jobsEvicted      *telemetry.Counter
	jobsDeduplicated *telemetry.Counter
	journalErrors    *telemetry.CounterVec
	// journalErrorsAll sums journalErrors across ops. It is not registered —
	// the labeled family is the scrape surface — but keeps Snapshot (and the
	// JSON stats endpoint) a single atomic read.
	journalErrorsAll telemetry.Counter
	eventsReplayed   *telemetry.Counter
	queueDepth       *telemetry.Gauge
	workers          *telemetry.Gauge

	checkpointsWritten  *telemetry.Counter
	checkpointsRestored *telemetry.Counter
	checkpointErrors    *telemetry.Counter
	jobsStalled         *telemetry.Counter
	watchdogRetries     *telemetry.Counter
	journalTruncated    *telemetry.Counter
	traceCorruption     *telemetry.Counter

	queueWait       *telemetry.Histogram
	parseSeconds    *telemetry.Histogram
	replaySeconds   *telemetry.Histogram
	jobSeconds      *telemetry.Histogram
	replayShards    *telemetry.Histogram
	checkpointBytes *telemetry.Histogram

	vsmTransitions  *telemetry.CounterVec
	casRetries      *telemetry.Counter
	intervalLookups *telemetry.Counter
	regionMemoHits  *telemetry.Counter

	// Per-tenant accounting. Every submission and stream open lands in
	// exactly one of admitted, throttled, or rejected; shed counts queued
	// work later failed by the overload controller or a missed deadline.
	tenantAdmitted   *telemetry.CounterVec
	tenantThrottled  *telemetry.CounterVec
	tenantRejected   *telemetry.CounterVec
	tenantShed       *telemetry.CounterVec
	tenantQueueDepth *telemetry.GaugeVec
	queueSojourn     *telemetry.Histogram
}

// newMetrics builds the registry with every family registered up front, so
// /metrics always exposes the full schema (zero-valued until first use).
func newMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg: reg,

		jobsAccepted:     reg.Counter("arbalestd_jobs_accepted_total", "Jobs accepted onto the queue."),
		jobsCompleted:    reg.Counter("arbalestd_jobs_completed_total", "Jobs that finished analysis successfully."),
		jobsFailed:       reg.Counter("arbalestd_jobs_failed_total", "Jobs that finished with an error (including panics and timeouts)."),
		jobsRejected:     reg.Counter("arbalestd_jobs_rejected_total", "Submissions rejected before acceptance (validation, limits, full queue, journal failure)."),
		jobsPanicked:     reg.Counter("arbalestd_jobs_panicked_total", "Jobs whose analyzer panicked; the panic was confined to the job."),
		jobsRecovered:    reg.Counter("arbalestd_jobs_recovered_total", "Jobs re-enqueued from the journal spool on startup."),
		jobsEvicted:      reg.Counter("arbalestd_jobs_evicted_total", "Finished jobs evicted by the retention policy."),
		jobsDeduplicated: reg.Counter("arbalestd_jobs_deduplicated_total", "Submissions answered from an existing job via idempotency key."),
		journalErrors: reg.CounterVec("arbalestd_journal_errors_total",
			"Write-ahead journal failures by operation (append, mark, checkpoint, remove, recover, fleet). Each failure is scoped to one job or session; the daemon stays up.", "op"),
		eventsReplayed: reg.Counter("arbalestd_events_replayed_total", "Trace events replayed through analyzers."),
		queueDepth:     reg.Gauge("arbalestd_queue_depth", "Jobs queued but not yet running."),
		workers:        reg.Gauge("arbalestd_workers", "Replay worker-pool size."),

		checkpointsWritten:  reg.Counter("arbalestd_checkpoints_written_total", "Analyzer-state checkpoints durably written to the spool at epoch boundaries."),
		checkpointsRestored: reg.Counter("arbalestd_checkpoints_restored_total", "Replays resumed from a spooled checkpoint instead of starting from scratch."),
		checkpointErrors:    reg.Counter("arbalestd_checkpoint_errors_total", "Checkpoints that failed to serialize or write, plus corrupt checkpoints dropped at recovery."),
		jobsStalled:         reg.Counter("arbalestd_jobs_stalled_total", "Replays canceled by the watchdog after their progress heartbeats stopped advancing."),
		watchdogRetries:     reg.Counter("arbalestd_watchdog_retries_total", "Stalled replays retried sequentially from their freshest checkpoint."),
		journalTruncated:    reg.Counter("arbalestd_journal_truncated_records_total", "Torn or corrupt journal meta records dropped during recovery."),
		traceCorruption:     reg.Counter("arbalestd_trace_corruption_total", "Uploads rejected because a framed trace failed its CRC or framing checks."),

		queueWait: reg.Histogram("arbalestd_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", telemetry.DurationBuckets),
		parseSeconds: reg.Histogram("arbalestd_parse_duration_seconds",
			"Time spent parsing uploaded traces (successful and failed).", telemetry.DurationBuckets),
		replaySeconds: reg.Histogram("arbalestd_replay_duration_seconds",
			"Replay wall time per job.", telemetry.DurationBuckets),
		jobSeconds: reg.Histogram("arbalestd_job_duration_seconds",
			"End-to-end job time from accept to terminal state.", telemetry.DurationBuckets),
		replayShards: reg.Histogram("arbalestd_replay_shards",
			"Replay analysis shards (worker goroutines) used per job; 1 means sequential dispatch.", ShardBuckets),
		checkpointBytes: reg.Histogram("arbalestd_checkpoint_bytes",
			"Serialized analyzer-state size per checkpoint, in bytes.", telemetry.SizeBuckets),

		vsmTransitions: reg.CounterVec("arbalestd_vsm_transitions_total",
			"VSM state transitions applied during replays, by (from, to) state.", "from", "to"),
		casRetries: reg.Counter("arbalestd_shadow_cas_retries_total",
			"Failed compare-and-swap attempts on shadow words during replays."),
		intervalLookups: reg.Counter("arbalestd_interval_lookups_total",
			"Interval-tree stabs performed during replays."),
		regionMemoHits: reg.Counter("arbalestd_region_memo_hits_total",
			"Address resolutions satisfied by a last-hit memo instead of an interval-tree stab during replays."),

		tenantAdmitted: reg.CounterVec("arbalestd_tenant_admitted_total",
			"Submissions and stream opens admitted, by tenant.", "tenant"),
		tenantThrottled: reg.CounterVec("arbalestd_tenant_throttled_total",
			"Requests rejected by the tenant token-bucket rate limiter (429 with Retry-After), by tenant.", "tenant"),
		tenantRejected: reg.CounterVec("arbalestd_tenant_rejected_total",
			"Requests rejected by tenant quotas or queue capacity, by tenant and reason (jobs, streams, bytes, queue).", "tenant", "reason"),
		tenantShed: reg.CounterVec("arbalestd_tenant_shed_total",
			"Queued jobs shed before replay, by tenant and reason (overload: CoDel queue-delay controller; deadline: client deadline expired).", "tenant", "reason"),
		tenantQueueDepth: reg.GaugeVec("arbalestd_tenant_queue_depth",
			"Jobs queued but not yet running, by tenant.", "tenant"),
		queueSojourn: reg.Histogram("arbalestd_queue_sojourn_seconds",
			"Queue delay observed at dequeue — the signal the CoDel shed controller tracks.", telemetry.DurationBuckets),
	}
	bi := telemetry.Version()
	reg.GaugeVec("arbalestd_build_info",
		"Build information; value is always 1.", "goversion", "version").
		With(bi.GoVersion, bi.Version).Set(1)
	return m
}

// Registry exposes the underlying telemetry registry (tests and embedders).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// Snapshot is a point-in-time copy of the counters, JSON-serializable.
type Snapshot struct {
	JobsAccepted     int64 `json:"jobsAccepted"`
	JobsCompleted    int64 `json:"jobsCompleted"`
	JobsFailed       int64 `json:"jobsFailed"`
	JobsRejected     int64 `json:"jobsRejected"`
	JobsPanicked     int64 `json:"jobsPanicked"`
	JobsRecovered    int64 `json:"jobsRecovered"`
	JobsEvicted      int64 `json:"jobsEvicted"`
	JobsDeduplicated int64 `json:"jobsDeduplicated"`
	JournalErrors    int64 `json:"journalErrors"`
	QueueDepth       int64 `json:"queueDepth"`
	EventsReplayed   int64 `json:"eventsReplayed"`

	CheckpointsWritten  int64 `json:"checkpointsWritten"`
	CheckpointsRestored int64 `json:"checkpointsRestored"`
	CheckpointErrors    int64 `json:"checkpointErrors"`
	JobsStalled         int64 `json:"jobsStalled"`
	WatchdogRetries     int64 `json:"watchdogRetries"`
	JournalTruncated    int64 `json:"journalTruncated"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		JobsAccepted:     int64(m.jobsAccepted.Value()),
		JobsCompleted:    int64(m.jobsCompleted.Value()),
		JobsFailed:       int64(m.jobsFailed.Value()),
		JobsRejected:     int64(m.jobsRejected.Value()),
		JobsPanicked:     int64(m.jobsPanicked.Value()),
		JobsRecovered:    int64(m.jobsRecovered.Value()),
		JobsEvicted:      int64(m.jobsEvicted.Value()),
		JobsDeduplicated: int64(m.jobsDeduplicated.Value()),
		JournalErrors:    int64(m.journalErrorsAll.Value()),
		QueueDepth:       m.queueDepth.Value(),
		EventsReplayed:   int64(m.eventsReplayed.Value()),

		CheckpointsWritten:  int64(m.checkpointsWritten.Value()),
		CheckpointsRestored: int64(m.checkpointsRestored.Value()),
		CheckpointErrors:    int64(m.checkpointErrors.Value()),
		JobsStalled:         int64(m.jobsStalled.Value()),
		WatchdogRetries:     int64(m.watchdogRetries.Value()),
		JournalTruncated:    int64(m.journalTruncated.Value()),
	}
}

// WriteText renders the full registry in the Prometheus text exposition
// format served at GET /metrics. workers is the service's worker-pool size.
func (m *Metrics) WriteText(w io.Writer, workers int) error {
	m.workers.Set(int64(workers))
	return m.reg.WritePrometheus(w)
}

// journalError counts one journal write failure under its operation label
// and in the unlabeled snapshot sum.
func (m *Metrics) journalError(op string) {
	m.journalErrors.With(op).Inc()
	m.journalErrorsAll.Inc()
}

// recordJobStats folds one finished job's analyzer-level telemetry into the
// service-wide labeled counters. st may be nil (stats disabled).
func (m *Metrics) recordJobStats(st *tools.Stats) {
	if st == nil {
		return
	}
	for _, t := range st.VSMTransitions {
		m.vsmTransitions.With(t.From, t.To).Add(t.Count)
	}
	m.casRetries.Add(st.ShadowCASRetries)
	m.intervalLookups.Add(st.IntervalLookups)
	m.regionMemoHits.Add(st.RegionMemoHits)
}
