package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics holds the service's operational counters. All fields are updated
// atomically and may be read while the service is running.
type Metrics struct {
	jobsAccepted     atomic.Int64
	jobsCompleted    atomic.Int64
	jobsFailed       atomic.Int64
	jobsRejected     atomic.Int64
	jobsPanicked     atomic.Int64
	jobsRecovered    atomic.Int64
	jobsEvicted      atomic.Int64
	jobsDeduplicated atomic.Int64
	journalErrors    atomic.Int64
	queueDepth       atomic.Int64
	eventsReplayed   atomic.Int64
	replayNanos      atomic.Int64
}

// Snapshot is a point-in-time copy of the counters, JSON-serializable.
type Snapshot struct {
	JobsAccepted     int64 `json:"jobsAccepted"`
	JobsCompleted    int64 `json:"jobsCompleted"`
	JobsFailed       int64 `json:"jobsFailed"`
	JobsRejected     int64 `json:"jobsRejected"`
	JobsPanicked     int64 `json:"jobsPanicked"`
	JobsRecovered    int64 `json:"jobsRecovered"`
	JobsEvicted      int64 `json:"jobsEvicted"`
	JobsDeduplicated int64 `json:"jobsDeduplicated"`
	JournalErrors    int64 `json:"journalErrors"`
	QueueDepth       int64 `json:"queueDepth"`
	EventsReplayed   int64 `json:"eventsReplayed"`
	ReplayNanos      int64 `json:"replayNanos"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		JobsAccepted:     m.jobsAccepted.Load(),
		JobsCompleted:    m.jobsCompleted.Load(),
		JobsFailed:       m.jobsFailed.Load(),
		JobsRejected:     m.jobsRejected.Load(),
		JobsPanicked:     m.jobsPanicked.Load(),
		JobsRecovered:    m.jobsRecovered.Load(),
		JobsEvicted:      m.jobsEvicted.Load(),
		JobsDeduplicated: m.jobsDeduplicated.Load(),
		JournalErrors:    m.journalErrors.Load(),
		QueueDepth:       m.queueDepth.Load(),
		EventsReplayed:   m.eventsReplayed.Load(),
		ReplayNanos:      m.replayNanos.Load(),
	}
}

// WriteText renders the counters in the Prometheus text exposition style
// served at GET /metrics. workers is the service's worker-pool size.
func (m *Metrics) WriteText(w io.Writer, workers int) error {
	s := m.Snapshot()
	_, err := fmt.Fprintf(w,
		"arbalestd_jobs_accepted_total %d\n"+
			"arbalestd_jobs_completed_total %d\n"+
			"arbalestd_jobs_failed_total %d\n"+
			"arbalestd_jobs_rejected_total %d\n"+
			"arbalestd_jobs_panicked_total %d\n"+
			"arbalestd_jobs_recovered_total %d\n"+
			"arbalestd_jobs_evicted_total %d\n"+
			"arbalestd_jobs_deduplicated_total %d\n"+
			"arbalestd_journal_errors_total %d\n"+
			"arbalestd_queue_depth %d\n"+
			"arbalestd_workers %d\n"+
			"arbalestd_events_replayed_total %d\n"+
			"arbalestd_replay_nanoseconds_total %d\n",
		s.JobsAccepted, s.JobsCompleted, s.JobsFailed, s.JobsRejected,
		s.JobsPanicked, s.JobsRecovered, s.JobsEvicted, s.JobsDeduplicated,
		s.JournalErrors, s.QueueDepth, workers, s.EventsReplayed, s.ReplayNanos)
	return err
}
