// Package service is the arbalestd analysis daemon: a long-running HTTP
// service that accepts recorded tool-interface traces (the JSON-lines format
// trace.Save emits), enqueues them on a bounded job queue, replays each
// through a fresh analyzer on a fixed worker pool, and serves the resulting
// diagnostics as structured JSON.
//
// The paper positions ARBALEST as an on-the-fly detector run over many
// executions of heterogeneous OpenMP applications; this package supplies the
// "collect traces at scale, analyze centrally" half of that pipeline. A
// submission is cheap (parse + enqueue, 429 when the queue is full), the
// replay work happens on -workers goroutines, and every job's lifecycle and
// the service's counters are observable over HTTP.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/tools"
	"repro/internal/trace"
)

// Submission errors surfaced by Submit (and mapped to HTTP statuses by the
// handlers: 429 for ErrQueueFull, 503 for ErrShuttingDown, 413 for
// ErrTooLarge).
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
	ErrTooLarge     = errors.New("service: trace exceeds per-job event limit")
)

// Config parameterizes a Service. Zero fields take the documented defaults.
type Config struct {
	// Workers is the replay worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects submissions rather than blocking.
	QueueSize int
	// MaxEvents caps a single job's trace length (default 1<<20 events).
	MaxEvents int
	// MaxBodyBytes caps a single upload's size (default 64 MiB).
	MaxBodyBytes int64
	// ReplayTimeout bounds one job's replay wall time; the replay is
	// canceled via context when it expires (default 0 = unlimited).
	ReplayTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Service is the analysis daemon's engine: job store, bounded queue, and
// worker pool. Create with New, then call Start; submit via Submit or the
// HTTP handler; stop with Shutdown, which drains accepted jobs.
type Service struct {
	cfg     Config
	metrics Metrics
	queue   chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID uint64
	closed bool

	wg      sync.WaitGroup
	started bool

	// testHookRunning, when set before Start, is called by a worker after
	// its job enters StatusRunning and before the replay begins. Tests use
	// it to hold workers in a known state.
	testHookRunning func(id string)
}

// New builds a Service with cfg (defaults applied). Call Start to launch the
// worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueSize),
		jobs:  make(map[string]*job),
	}
}

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// Metrics returns the service's counters.
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Start launches the worker pool. It is a no-op if already started.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Submit validates the tool name and trace size, then enqueues a job. It
// never blocks: a full queue fails with ErrQueueFull (HTTP 429) so callers
// get backpressure instead of latency.
func (s *Service) Submit(toolName string, tr *trace.Trace) (JobView, error) {
	if _, err := tools.New(toolName); err != nil {
		s.metrics.jobsRejected.Add(1)
		return JobView{}, err
	}
	if len(tr.Events) > s.cfg.MaxEvents {
		s.metrics.jobsRejected.Add(1)
		return JobView{}, fmt.Errorf("%w: %d events > limit %d", ErrTooLarge, len(tr.Events), s.cfg.MaxEvents)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.jobsRejected.Add(1)
		return JobView{}, ErrShuttingDown
	}
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		tool:      toolName,
		status:    StatusPending,
		submitted: time.Now(),
		events:    len(tr.Events),
		tr:        tr,
	}
	select {
	case s.queue <- j:
		s.nextID++
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		view := j.viewLocked()
		s.mu.Unlock()
		s.metrics.jobsAccepted.Add(1)
		s.metrics.queueDepth.Add(1)
		return view, nil
	default:
		s.mu.Unlock()
		s.metrics.jobsRejected.Add(1)
		return JobView{}, ErrQueueFull
	}
}

// Job returns a snapshot of the identified job.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.viewLocked(), true
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].viewLocked())
	}
	return out
}

// Shutdown stops accepting new jobs, drains every already-accepted job
// (queued and in-flight), and waits for the workers to exit. It returns
// ctx's error if the drain does not finish in time.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pulls jobs until the queue is closed and drained.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.queueDepth.Add(-1)
		s.runJob(j)
	}
}

// runJob replays one job's trace through a fresh analyzer and records the
// outcome on the job and the metrics.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	tr := j.tr
	hook := s.testHookRunning
	s.mu.Unlock()
	if hook != nil {
		hook(j.id)
	}

	var (
		wall    time.Duration
		summary *tools.Summary
	)
	a, err := tools.New(j.tool)
	if err == nil {
		ctx := context.Background()
		cancel := func() {}
		if s.cfg.ReplayTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.ReplayTimeout)
		}
		start := time.Now()
		err = tr.ReplayContext(ctx, a)
		wall = time.Since(start)
		cancel()
		s.metrics.replayNanos.Add(int64(wall))
		if err == nil {
			s.metrics.eventsReplayed.Add(int64(len(tr.Events)))
			summary = tools.Summarize(a)
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.wall = wall
	j.tr = nil // release the trace's memory; only the summary is kept
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = summary
	}
	s.mu.Unlock()
	if err != nil {
		s.metrics.jobsFailed.Add(1)
	} else {
		s.metrics.jobsCompleted.Add(1)
	}
}
