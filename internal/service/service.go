// Package service is the arbalestd analysis daemon: a long-running HTTP
// service that accepts recorded tool-interface traces (the JSON-lines format
// trace.Save emits), enqueues them on a bounded job queue, replays each
// through a fresh analyzer on a fixed worker pool, and serves the resulting
// diagnostics as structured JSON.
//
// The paper positions ARBALEST as an on-the-fly detector run over many
// executions of heterogeneous OpenMP applications; this package supplies the
// "collect traces at scale, analyze centrally" half of that pipeline. A
// submission is cheap (parse + enqueue, 429 when the queue is full), the
// replay work happens on -workers goroutines, and every job's lifecycle and
// the service's counters are observable over HTTP.
//
// # Durability and fault tolerance
//
// With a journal configured (Config.Journal), every accepted job is
// journaled to a spool directory before it is acknowledged: the trace
// first, then each lifecycle transition. After a crash, Recover replays
// the journal — jobs that never reached a terminal state are re-enqueued
// exactly once, terminal jobs come back as history. Analyzer panics are
// confined to the job that caused them: the job fails with the panic
// value and a stack fragment while the worker and its pool survive.
// Retention limits (Config.MaxFinishedJobs, Config.MaxJobAge) garbage-
// collect finished jobs and their spool files so neither the in-memory
// job map nor the spool directory grows without bound. Clients may send
// an idempotency key with a submission; a retried upload carrying the
// same key is deduplicated to the original job instead of analyzed
// twice.
//
// # Observability
//
// Every job carries a span tree (accept -> parse -> journal -> queue ->
// replay -> summarize) served at GET /v1/jobs/{id}/trace and embedded in
// the job JSON; GET /metrics exposes the full telemetry registry in
// Prometheus text format, including latency histograms and analyzer-level
// VSM statistics aggregated across jobs. Operational logging goes through
// a structured log/slog logger with job_id, tool, and phase attributes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/tools"
	"repro/internal/trace"
)

// Submission errors surfaced by Submit (and mapped to HTTP statuses by the
// handlers: 429 for ErrQueueFull, 503 for ErrShuttingDown and ErrJournal,
// 413 for ErrTooLarge).
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
	ErrTooLarge     = errors.New("service: trace exceeds per-job event limit")
	// ErrJournal wraps a write-ahead journal failure on the accept path.
	// The submission was not accepted; retrying (with the same
	// idempotency key) is safe.
	ErrJournal = errors.New("service: journal write failed")
)

// Config parameterizes a Service. Zero fields take the documented defaults.
type Config struct {
	// Workers is the replay worker-pool size — how many jobs analyze
	// concurrently (default GOMAXPROCS).
	Workers int
	// ReplayWorkers is the per-job analysis fan-out: each replay shards
	// its access events across this many goroutines (epoch-sharded, see
	// trace.ReplayParallel). 0 defaults to 1 (sequential dispatch, the
	// historical behavior); negative means GOMAXPROCS. Findings are
	// identical to sequential replay regardless of the setting.
	ReplayWorkers int
	// QueueSize bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects submissions rather than blocking.
	QueueSize int
	// MaxEvents caps a single job's trace length (default 1<<20 events).
	MaxEvents int
	// MaxBodyBytes caps a single upload's size (default 64 MiB).
	MaxBodyBytes int64
	// ReplayTimeout bounds one job's replay wall time; the replay is
	// canceled via context when it expires (default 0 = unlimited).
	ReplayTimeout time.Duration
	// CheckpointEvery, when positive and a Journal is configured, asks
	// each replay to checkpoint the analyzer's state roughly every this
	// many events (taken at the next epoch boundary, where the analysis
	// pool is drained). After a crash, Recover resumes such jobs from
	// their freshest checkpoint instead of replaying from scratch. Only
	// analyzers implementing tools.Checkpointer participate; the rest
	// re-run from the start as before. 0 disables checkpointing.
	CheckpointEvery uint64
	// StallTimeout, when positive, arms a per-job watchdog: a replay
	// whose progress heartbeats stop advancing for this long is canceled
	// and retried once sequentially from its freshest checkpoint; if the
	// retry stalls too, the job fails. 0 disables the watchdog.
	StallTimeout time.Duration
	// Journal, when non-nil, write-ahead journals every accepted job to
	// its spool directory and makes Recover possible. Nil keeps jobs
	// in-memory only.
	Journal *journal.Journal
	// MaxFinishedJobs bounds how many terminal (done/failed) jobs are
	// retained in memory and in the spool; the oldest-finished are
	// evicted past the limit (default 1024, negative = unlimited).
	MaxFinishedJobs int
	// MaxJobAge, when positive, evicts terminal jobs whose finish time
	// is older than this (checked when jobs finish and on submissions).
	MaxJobAge time.Duration
	// Logger receives structured operational logging (journal mark
	// failures, analyzer panics, recovery problems); every job-scoped
	// line carries job_id, tool, and phase attributes. Nil discards.
	Logger *slog.Logger
	// AnalyzerStats, when true, enables per-job analyzer-level telemetry
	// (VSM state transitions, shadow CAS retries, interval-tree lookups)
	// on analyzers that support it. The counts appear in each job's
	// result and aggregate into the /metrics registry. Off by default:
	// the instrumented paths are nil-checked atomics with no measurable
	// overhead when disabled, but collection itself is opt-in.
	AnalyzerStats bool
	// MaxStreams caps concurrently live streaming ingestion sessions
	// (default 256, negative = unlimited). At the cap, POST /v1/streams
	// answers 429 and /readyz degrades to 503.
	MaxStreams int
	// StreamMaxBytes is each streaming session's wire-byte budget (default
	// 256 MiB, negative = unlimited); a session that exceeds it is evicted.
	StreamMaxBytes int64
	// StreamIdleTimeout evicts live streaming sessions with no ingest
	// activity for this long (default 5m, negative disables).
	StreamIdleTimeout time.Duration
	// StreamReadTimeout bounds how long an attached ingest request may go
	// between body chunks before the session is evicted as a slow consumer
	// (default 1m, negative disables).
	StreamReadTimeout time.Duration
	// ExternalDispatch, when true, keeps Start from launching the inline
	// worker pool: accepted jobs stay on the queue for an external
	// dispatcher (the fleet coordinator, via dist.Backend) that decides
	// per job whether to lease it to a remote worker or run it inline.
	// Everything else — admission, journaling, recovery, retention — is
	// unchanged.
	ExternalDispatch bool
	// TraceCapacity bounds the in-memory distributed-trace store served at
	// GET /v1/traces (0 = telemetry.DefaultTraceCapacity). Negative
	// disables distributed tracing entirely: jobs and streams get no trace
	// identity, lease grants carry no traceparent, and the traced code
	// paths reduce to nil checks.
	TraceCapacity int
	// TraceSampleRate is the head-based sampling fraction for new traces
	// (<=0 or >=1 records every trace). The verdict is made once at
	// admission and propagated in the trace context, so every process
	// handling the job agrees.
	TraceSampleRate float64
	// TenantDefaults are the limits unknown tenants start with. The zero
	// value is a fully open tenant — the single-tenant daemon's behavior.
	TenantDefaults tenant.Limits
	// TenantLimits seeds per-tenant limits at construction (the -tenants
	// flag). Limits recovered from the journal's tenant log are applied
	// after these, so live tuning from a previous life wins.
	TenantLimits map[string]tenant.Limits
	// ShedTarget, when positive, arms the CoDel-style queue-delay
	// controller: when the queue sojourn observed at dequeue stays above
	// this target for a full interval, the newest queued job of the
	// heaviest-backlogged tenant is shed (failed before replay) and sheds
	// accelerate until the delay recovers. 0 disables shedding.
	ShedTarget time.Duration
	// ShedInterval is the controller's initial interval (default
	// 10*ShedTarget).
	ShedInterval time.Duration
	// GCInterval, when positive, also runs the retention GC on a background
	// timer (it always runs inline as jobs finish and on submissions). The
	// timer's first firing is staggered by a uniform random fraction of the
	// interval so a fleet restarted in unison does not sweep its spool
	// directories in lockstep.
	GCInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ReplayWorkers == 0 {
		c.ReplayWorkers = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxFinishedJobs == 0 {
		c.MaxFinishedJobs = 1024
	}
	if c.StreamReadTimeout == 0 {
		c.StreamReadTimeout = time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Service is the analysis daemon's engine: job store, bounded queue, and
// worker pool. Create with New, then (optionally) Recover, then Start;
// submit via Submit or the HTTP handler; stop with Shutdown, which drains
// accepted jobs.
type Service struct {
	cfg     Config
	metrics *Metrics
	hub     *stream.Hub
	// traces is the bounded distributed-trace store (nil when
	// Config.TraceCapacity is negative: tracing disabled).
	traces *telemetry.TraceStore
	// fleetSource, when set (SetFleetSource), contributes the coordinator's
	// worker table to GET /v1/fleet/status; nil means standalone mode and
	// the handler synthesizes the inline pool as one worker.
	fleetSource FleetSource

	// tenants is the tenant registry: identity, rate limits, quotas, and
	// WFQ weights. It has its own lock, always acquired after s.mu.
	tenants *tenant.Registry

	mu sync.Mutex
	// fq is the weighted-fair job queue, guarded by s.mu. ready is its
	// wake-up channel: one buffered token per push (best effort — a shed
	// leaves an orphan token, a full buffer drops the send), so tokens >=
	// queued items always holds and dequeue treats an empty pop as a
	// spurious wake-up. Shutdown closes ready.
	fq        *tenant.FairQueue[*job]
	ready     chan struct{}
	codel     tenant.CoDel
	jobs      map[string]*job
	order     []string
	keys      map[string]string // idempotency key -> job id
	nextID    uint64
	closed    bool
	recovered bool

	wg      sync.WaitGroup
	started bool
	gcStop  chan struct{}

	// testHookRunning, when set before Start, is called by a worker after
	// its job enters StatusRunning and before the replay begins. Tests use
	// it to hold workers in a known state.
	testHookRunning func(id string)
}

// New builds a Service with cfg (defaults applied). Call Start to launch the
// worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	svc := &Service{
		cfg:     cfg,
		metrics: newMetrics(),
		tenants: tenant.NewRegistry(cfg.TenantDefaults),
		fq:      tenant.NewFairQueue[*job](),
		ready:   make(chan struct{}, cfg.QueueSize),
		codel:   tenant.CoDel{Target: cfg.ShedTarget, Interval: cfg.ShedInterval},
		jobs:    make(map[string]*job),
		keys:    make(map[string]string),
		gcStop:  make(chan struct{}),
	}
	// Flag-seeded limits go through Apply, not Set: only live tuning is
	// journaled, so recovery (which runs after this) can overlay newer
	// journaled limits on top.
	for name, lim := range cfg.TenantLimits {
		svc.tenants.Apply(name, lim)
	}
	if cfg.Journal != nil {
		tl := cfg.Journal.Tenants()
		svc.tenants.OnChange(func(name string, lim tenant.Limits) {
			if err := tl.RecordLimits(name, lim); err != nil {
				svc.metrics.journalError("tenant")
				cfg.Logger.Error("tenant limits journal failed",
					"phase", "tenant", "tenant", name, "err", err)
			}
		})
	}
	if cfg.TraceCapacity >= 0 {
		svc.traces = telemetry.NewTraceStore(cfg.TraceCapacity, cfg.TraceSampleRate, svc.metrics.reg)
	}
	// The stream hub shares the service's registry so /metrics exposes job
	// and stream families side by side (one hub per registry), the trace
	// store so stream sessions land next to job traces, and the tenant
	// registry so stream slots and spooled bytes draw on the same quotas as
	// job submissions.
	svc.hub = stream.NewHub(stream.Config{
		Registry:        svc.metrics.reg,
		Traces:          svc.traces,
		Tenants:         svc.tenants,
		Journal:         cfg.Journal,
		MaxStreams:      cfg.MaxStreams,
		MaxBytes:        cfg.StreamMaxBytes,
		MaxEvents:       cfg.MaxEvents,
		IdleTimeout:     cfg.StreamIdleTimeout,
		CheckpointEvery: cfg.CheckpointEvery,
		Logger:          cfg.Logger,
		AnalyzerStats:   cfg.AnalyzerStats,
	})
	return svc
}

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// Metrics returns the service's counters.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Streams returns the live streaming-ingestion hub.
func (s *Service) Streams() *stream.Hub { return s.hub }

// Traces returns the bounded distributed-trace store, nil when tracing is
// disabled (Config.TraceCapacity < 0).
func (s *Service) Traces() *telemetry.TraceStore { return s.traces }

// Tenants returns the tenant registry.
func (s *Service) Tenants() *tenant.Registry { return s.tenants }

// jobLogger returns the configured logger scoped to one job, so every line
// it emits carries the job_id and tool attributes — plus trace_id/span_id
// when the job is traced, which is what joins log lines against
// GET /v1/traces/{trace_id}.
func (s *Service) jobLogger(j *job) *slog.Logger {
	return telemetry.LoggerWithTrace(s.cfg.Logger.With("job_id", j.id, "tool", j.tool), j.tc)
}

// Draining reports whether Shutdown has begun; the health endpoint turns
// 503 once it has, so load balancers stop routing to this instance.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// QueueFullness returns queued jobs and queue capacity; the readiness
// endpoint degrades to 503 when the queue is nearly full.
func (s *Service) QueueFullness() (depth, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fq.Len(), s.cfg.QueueSize
}

// Recover replays the configured journal's spool directory into the
// service: terminal jobs are restored as history (results and errors
// intact), and every job that never reached a terminal state is
// re-enqueued exactly once for analysis. It must be called after New and
// before Start, at most once, and returns the number of re-enqueued jobs.
// Per-job journal damage (a corrupt meta file, a missing trace) is
// logged and skipped, never fatal: one bad spool entry must not keep the
// daemon down.
func (s *Service) Recover() (int, error) {
	if s.cfg.Journal == nil {
		return 0, errors.New("service: no journal configured")
	}
	// Streaming sessions recover alongside jobs: live ones are rebuilt from
	// their checkpoint plus spooled bytes and stay open for client resume.
	// Stream damage is logged, never fatal to job recovery.
	if n, err := s.hub.Recover(); err != nil {
		s.cfg.Logger.Error("stream recovery failed", "phase", "recovery", "err", err)
	} else if n > 0 {
		s.cfg.Logger.Info("recovered live streaming sessions", "phase", "recovery", "sessions", n)
	}
	// Journaled tenant tuning overlays the flag-seeded limits (Apply: no
	// re-journaling). A damaged tenant log degrades to flag defaults, never
	// blocks job recovery.
	var tstats journal.RecoverStats
	if lims, terr := s.cfg.Journal.Tenants().RecoverTenants(&tstats); terr != nil {
		s.cfg.Logger.Error("tenant limits recovery failed", "phase", "recovery", "err", terr)
	} else {
		for name, lim := range lims {
			s.tenants.Apply(name, lim)
		}
	}
	recovered, rstats, errs := s.cfg.Journal.Recover()
	rstats.TruncatedRecords += tstats.TruncatedRecords
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return 0, errors.New("service: Recover must be called before Start")
	}
	if s.recovered {
		return 0, errors.New("service: Recover called twice")
	}
	s.recovered = true
	if rstats.TruncatedRecords > 0 {
		s.metrics.journalTruncated.Add(uint64(rstats.TruncatedRecords))
		s.cfg.Logger.Warn("journal recovery dropped torn or corrupt meta records",
			"phase", "recovery", "records", rstats.TruncatedRecords)
	}
	if rstats.DroppedCheckpoints > 0 {
		s.metrics.checkpointErrors.Add(uint64(rstats.DroppedCheckpoints))
		s.cfg.Logger.Warn("journal recovery dropped corrupt checkpoints; affected jobs replay from scratch",
			"phase", "recovery", "checkpoints", rstats.DroppedCheckpoints)
	}
	for _, err := range errs {
		s.metrics.journalError("recover")
		l := s.cfg.Logger.With("phase", "recovery")
		var je *journal.JobError
		if errors.As(err, &je) {
			l = l.With("job_id", je.ID)
		}
		l.Error("journal recovery error", "err", err)
	}

	// Grow the wake-up channel if the backlog from the previous life
	// exceeds the configured capacity: recovery must never drop an accepted
	// job. The fresh channel gets exactly one token per job already queued
	// (orphan tokens from pre-recovery sheds are not carried over).
	pending := 0
	for _, rj := range recovered {
		if rj.Status == journal.StatusPending || rj.Status == journal.StatusRunning {
			pending++
		}
	}
	if need := s.fq.Len() + pending; need > cap(s.ready) {
		fresh := make(chan struct{}, need)
		for i := 0; i < s.fq.Len(); i++ {
			fresh <- struct{}{}
		}
		s.ready = fresh
	}

	requeued := 0
	for _, rj := range recovered {
		if _, exists := s.jobs[rj.ID]; exists {
			continue
		}
		j := &job{
			id:        rj.ID,
			tool:      rj.Tool,
			key:       rj.Key,
			tenant:    tenant.Canonical(rj.Tenant),
			deadline:  rj.Deadline,
			submitted: rj.Submitted,
			started:   rj.Started,
			events:    rj.Events,
		}
		switch rj.Status {
		case journal.StatusDone:
			j.status = StatusDone
			j.finished = rj.Finished
			if len(rj.Result) > 0 {
				var sum tools.Summary
				if err := json.Unmarshal(rj.Result, &sum); err == nil {
					j.result = &sum
				} else {
					s.jobLogger(j).Error("recovered result unmarshal failed",
						"phase", "recovery", "err", err)
				}
			}
		case journal.StatusFailed:
			j.status = StatusFailed
			j.finished = rj.Finished
			j.errMsg = rj.Error
		default: // pending or running: back to the queue, exactly once
			j.status = StatusPending
			j.started = time.Time{}
			j.tr = rj.Trace
			j.ckpt = rj.Checkpoint
			j.enqueued = time.Now()
			// Re-attribute the job to its tenant without quota enforcement
			// (an accepted job must never be dropped at restart); the spool
			// does not record upload sizes, so recovered jobs hold a slot
			// but no bytes.
			t := s.tenants.Get(j.tenant)
			t.Adopt(0)
			j.quotaHeld = true
			s.fq.Push(j.tenant, t.Weight(), j)
			s.metrics.tenantQueueDepth.With(j.tenant).Set(int64(s.fq.TenantLen(j.tenant)))
			select {
			case s.ready <- struct{}{}:
			default:
			}
			requeued++
			s.metrics.jobsRecovered.Inc()
			s.metrics.queueDepth.Add(1)
			if j.ckpt != nil {
				s.jobLogger(j).Info("job re-enqueued from journal with checkpoint",
					"phase", "recovery", "resume_event", j.ckpt.NextEvent)
			} else {
				s.jobLogger(j).Info("job re-enqueued from journal", "phase", "recovery")
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.key != "" {
			s.keys[j.key] = j.id
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(rj.ID, "job-"), 10, 64); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	return requeued, nil
}

// Start launches the worker pool. It is a no-op if already started.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	if !s.cfg.ExternalDispatch {
		s.wg.Add(s.cfg.Workers)
		for i := 0; i < s.cfg.Workers; i++ {
			go s.worker()
		}
	}
	if s.cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	s.hub.Start()
}

// gcLoop runs the retention GC on a timer. The first firing is staggered
// by a uniform random fraction of the interval: a fleet of daemons
// restarted in unison (deploy, power event) must not all sweep their spool
// directories at the same instant and stampede the shared disk.
func (s *Service) gcLoop() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Duration(rand.Int64N(int64(s.cfg.GCInterval) + 1)))
	defer timer.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-timer.C:
			s.GC()
			timer.Reset(s.cfg.GCInterval)
		}
	}
}

// Submit validates the tool name and trace size, then enqueues a job. It
// never blocks: a full queue fails with ErrQueueFull (HTTP 429) so callers
// get backpressure instead of latency.
func (s *Service) Submit(toolName string, tr *trace.Trace) (JobView, error) {
	view, _, err := s.SubmitTrace(SubmitOptions{Tool: toolName}, tr)
	return view, err
}

// SubmitKeyed is Submit with an optional idempotency key. When key is
// non-empty and a live job was already accepted under it, that job's view
// is returned with duplicate=true and nothing new is enqueued — this is
// what makes client-side retry of an upload safe. With a journal
// configured, the job is durably journaled before it is acknowledged.
func (s *Service) SubmitKeyed(toolName, key string, tr *trace.Trace) (view JobView, duplicate bool, err error) {
	return s.SubmitTrace(SubmitOptions{Tool: toolName, Key: key}, tr)
}

// SubmitOptions carries a submission's metadata, including the timing the
// caller observed before Submit was reached, so the job's span tree can
// start at request arrival rather than at enqueue.
type SubmitOptions struct {
	// Tool is the analyzer name (see tools.Names).
	Tool string
	// Key is the optional idempotency key.
	Key string
	// Start is when the request was first seen (zero = now). It becomes
	// the root span's start time.
	Start time.Time
	// ParseDuration is how long the caller spent parsing the trace before
	// submission; non-zero adds a "parse" child span.
	ParseDuration time.Duration
	// Traceparent, when it parses as a W3C traceparent header, joins the
	// job to the client's distributed trace (the client's span becomes the
	// job span's parent and its sampling verdict is honored). Empty or
	// malformed, the service mints a fresh trace subject to head sampling.
	Traceparent string
	// Tenant is the caller's identity (the X-Arbalest-Tenant header);
	// empty maps to tenant.DefaultName.
	Tenant string
	// Deadline, when non-zero, is the client's completion deadline; a job
	// still queued when it passes is shed instead of replayed.
	Deadline time.Time
	// Bytes is the upload's wire size, charged against the tenant's byte
	// quota while the job is live (0 = uncharged).
	Bytes int64
}

// SubmitTrace is the full submission entry point: Submit and SubmitKeyed
// delegate to it. It builds the job's span tree (root "job" with parse,
// journal, and queue children; the worker adds replay and summarize).
func (s *Service) SubmitTrace(opts SubmitOptions, tr *trace.Trace) (view JobView, duplicate bool, err error) {
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	if _, err := tools.New(opts.Tool); err != nil {
		s.countRejected()
		return JobView{}, false, err
	}
	if len(tr.Events) > s.cfg.MaxEvents {
		s.countRejected()
		return JobView{}, false, fmt.Errorf("%w: %d events > limit %d", ErrTooLarge, len(tr.Events), s.cfg.MaxEvents)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.countRejected()
		return JobView{}, false, ErrShuttingDown
	}
	if opts.Key != "" {
		if id, ok := s.keys[opts.Key]; ok {
			if j, ok := s.jobs[id]; ok {
				s.metrics.jobsDeduplicated.Inc()
				return j.viewLocked(), true, nil
			}
			// The original was evicted by retention GC; treat the
			// resubmission as new work.
			delete(s.keys, opts.Key)
		}
	}
	// Tenant admission: rate limit first (cheapest, carries Retry-After),
	// then global queue capacity, then the tenant's job/byte quotas —
	// acquired last so no release is needed on the capacity rejection.
	tname := tenant.Canonical(opts.Tenant)
	tn := s.tenants.Get(tname)
	// Get may have collapsed the identity into the shared overflow tenant;
	// metrics and the queue must key on the effective name.
	tname = tn.Name()
	if err := tn.Admit(); err != nil {
		s.metrics.tenantThrottled.With(tname).Inc()
		s.countRejected()
		return JobView{}, false, err
	}
	if s.fq.Len() >= s.cfg.QueueSize {
		s.metrics.tenantRejected.With(tname, "queue").Inc()
		s.countRejected()
		return JobView{}, false, ErrQueueFull
	}
	if err := tn.AcquireJob(opts.Bytes); err != nil {
		reason := "jobs"
		if errors.Is(err, tenant.ErrByteQuota) {
			reason = "bytes"
		}
		s.metrics.tenantRejected.With(tname, reason).Inc()
		s.countRejected()
		return JobView{}, false, err
	}
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		tool:      opts.Tool,
		key:       opts.Key,
		tenant:    tname,
		deadline:  opts.Deadline,
		bytes:     opts.Bytes,
		quotaHeld: true,
		status:    StatusPending,
		submitted: time.Now(),
		events:    len(tr.Events),
		tr:        tr,
		span:      telemetry.NewSpan("job", opts.Start),
	}
	if s.traces != nil {
		if ptc, ok := telemetry.ParseTraceparent(opts.Traceparent); ok {
			// Client-supplied context: join its trace under its span, keeping
			// its sampling verdict so every process agrees.
			j.tc = telemetry.TraceContext{TraceID: ptc.TraceID, SpanID: telemetry.NewSpanID(), Sampled: ptc.Sampled}
			if j.tc.Sampled {
				j.span.Identify(j.tc, ptc.SpanID)
			}
		} else if s.traces.Admit() {
			j.tc = telemetry.NewTraceContext()
			j.span.Identify(j.tc, "")
		}
	}
	j.span.SetCount("events", int64(j.events))
	if opts.ParseDuration > 0 {
		ps := j.span.StartChild("parse", opts.Start)
		ps.EndAt(opts.Start.Add(opts.ParseDuration))
	}
	if s.cfg.Journal != nil {
		// Write-ahead: the job is journaled (trace + pending mark,
		// fsynced) before it is acknowledged or enqueued, so a crash
		// after this point cannot lose it.
		js := j.span.StartChild("journal", time.Time{})
		jerr := s.cfg.Journal.Append(journal.Record{
			ID: j.id, Tool: j.tool, Key: j.key, Tenant: j.tenant,
			Events: j.events, Submitted: j.submitted, Deadline: j.deadline,
		}, tr)
		js.EndAt(time.Time{})
		if jerr != nil {
			tn.ReleaseJob(j.bytes)
			s.metrics.journalError("append")
			s.countRejected()
			return JobView{}, false, fmt.Errorf("%w: %v", ErrJournal, jerr)
		}
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if opts.Key != "" {
		s.keys[opts.Key] = j.id
	}
	j.enqueued = time.Now()
	j.span.StartChild("queue", j.enqueued)
	s.fq.Push(j.tenant, tn.Weight(), j)
	s.metrics.tenantQueueDepth.With(j.tenant).Set(int64(s.fq.TenantLen(j.tenant)))
	select {
	case s.ready <- struct{}{}:
	default:
		// The buffer already holds at least QueueSize tokens — more than
		// the items now queued — so a worker is guaranteed to wake for j.
	}
	s.metrics.jobsAccepted.Inc()
	s.metrics.tenantAdmitted.With(j.tenant).Inc()
	s.metrics.queueDepth.Add(1)
	s.gcLocked(time.Now())
	s.publishTraceLocked(j)
	return j.viewLocked(), false, nil
}

// countRejected is the single place submission rejections are counted, so
// no code path can double-count one rejection (the HTTP layer counts
// body/parse failures through it too, before Submit is ever reached).
func (s *Service) countRejected() { s.metrics.jobsRejected.Inc() }

// Job returns a snapshot of the identified job.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.viewLocked(), true
}

// JobTrace returns a deep copy of the identified job's span tree, or
// (nil, true) for a job that has none (jobs recovered from the journal
// lose their in-memory spans).
func (s *Service) JobTrace(id string) (*telemetry.Span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.span.Clone(), true
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].viewLocked())
	}
	return out
}

// Shutdown stops accepting new jobs, drains every already-accepted job
// (queued and in-flight), and waits for the workers to exit. It returns
// ctx's error if the drain does not finish in time.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ready)
		close(s.gcStop)
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		s.hub.Close()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.hub.Close()
		return nil
	case <-ctx.Done():
		s.hub.Close()
		return ctx.Err()
	}
}

// worker pulls jobs until the queue is closed and drained.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.dequeue(context.Background())
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// dequeue blocks for the next job under weighted-fair order. At each pop it
// observes the job's queue sojourn (the CoDel controller's signal), sheds
// jobs whose client deadline already passed, and — when the controller says
// the queue delay has stayed above target — sheds the newest queued job of
// the heaviest-backlogged tenant, the work whose loss costs the least sunk
// investment and whose owner contributes most to the backlog. ok=false
// means ctx was canceled or the service is shutting down with the queue
// drained; tokens without items (left by sheds) are consumed silently.
func (s *Service) dequeue(ctx context.Context) (*job, bool) {
	for {
		s.mu.Lock()
		ready := s.ready
		s.mu.Unlock()
		select {
		case _, ok := <-ready:
			if !ok {
				// Closed and drained: every push's token was consumed, and
				// tokens >= items always holds, so the queue is empty.
				return nil, false
			}
		case <-ctx.Done():
			return nil, false
		}

		now := time.Now()
		s.mu.Lock()
		tname, j, ok := s.fq.Pop()
		if !ok {
			// Orphan token from a shed; the item is already gone.
			s.mu.Unlock()
			continue
		}
		s.metrics.queueDepth.Add(-1)
		s.metrics.tenantQueueDepth.With(tname).Set(int64(s.fq.TenantLen(tname)))
		sojourn := now.Sub(j.enqueued)
		s.metrics.queueSojourn.ObserveDuration(sojourn)
		var shed *job
		if s.cfg.ShedTarget > 0 && s.codel.OnDequeue(now, sojourn) {
			if ht, _, ok := s.fq.Heaviest(); ok {
				if sj, ok := s.fq.PopNewest(ht); ok {
					shed = sj
					s.metrics.queueDepth.Add(-1)
					s.metrics.tenantQueueDepth.With(ht).Set(int64(s.fq.TenantLen(ht)))
				}
			}
		}
		expired := !j.deadline.IsZero() && now.After(j.deadline)
		s.mu.Unlock()

		if shed != nil {
			s.failShed(shed, "overload",
				"service: shed under overload: queue delay above target")
		}
		if expired {
			s.failShed(j, "deadline", "service: client deadline expired before replay started")
			continue
		}
		return j, true
	}
}

// failShed records a queued job's terminal failure without running it:
// span, journal mark, quota release, and the per-tenant shed counter. The
// job's token (if any remains) is consumed as an orphan by a later dequeue.
func (s *Service) failShed(j *job, reason, msg string) {
	s.mu.Lock()
	j.finished = time.Now()
	j.status = StatusFailed
	j.errMsg = msg
	j.tr = nil
	j.ckpt = nil
	if j.span != nil {
		if qs := j.span.Child("queue"); qs != nil {
			qs.EndAt(j.finished)
		}
		j.span.SetError(msg)
		j.span.EndAt(j.finished)
	}
	s.releaseQuotaLocked(j)
	s.publishTraceLocked(j)
	s.metrics.tenantShed.With(j.tenant, reason).Inc()
	s.gcLocked(j.finished)
	s.mu.Unlock()
	s.metrics.jobsFailed.Inc()
	s.jobLogger(j).Warn("job shed before replay", "phase", "shed", "reason", reason, "tenant", j.tenant)
	s.mark(j, journal.StatusFailed, msg, nil)
	if s.cfg.Journal != nil {
		if rerr := s.cfg.Journal.RemoveCheckpoint(j.id); rerr != nil {
			s.metrics.journalError("remove")
			s.jobLogger(j).Error("checkpoint remove failed", "phase", "gc", "err", rerr)
		}
	}
}

// releaseQuotaLocked returns the job's tenant quota (slot + bytes) exactly
// once; the caller must hold s.mu.
func (s *Service) releaseQuotaLocked(j *job) {
	if !j.quotaHeld {
		return
	}
	j.quotaHeld = false
	s.tenants.Get(j.tenant).ReleaseJob(j.bytes)
}

// mark journals a lifecycle transition, logging (never failing the job
// on) journal errors: the in-memory state is already correct, and a lost
// terminal mark only means the job is re-analyzed after a crash.
func (s *Service) mark(j *job, status, errMsg string, result json.RawMessage) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Mark(j.id, status, errMsg, result); err != nil {
		s.metrics.journalError("mark")
		s.jobLogger(j).Error("journal mark failed", "phase", status, "err", err)
	}
}

// errStalled marks a replay whose progress heartbeats stopped advancing for
// longer than Config.StallTimeout. runJob retries such a job once,
// sequentially, from its freshest checkpoint.
var errStalled = errors.New("service: replay stalled: no progress within the stall timeout")

// runJob replays one job's trace through a fresh analyzer and records the
// outcome on the job, its span tree, and the metrics. An analyzer panic is
// confined to this job: it is recovered, recorded as the job's failure with
// a stack fragment, and the worker goes on to its next job. A job carrying
// a checkpoint (from a previous life of the daemon) resumes from it; with
// Config.StallTimeout set, a watchdog cancels replays whose heartbeats stop
// and retries them once sequentially.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	if qs := j.span.Child("queue"); qs != nil {
		qs.EndAt(j.started)
	}
	if !j.enqueued.IsZero() {
		s.metrics.queueWait.ObserveDuration(j.started.Sub(j.enqueued))
	}
	tr := j.tr
	ckpt := j.ckpt
	hook := s.testHookRunning
	s.mu.Unlock()
	s.mark(j, journal.StatusRunning, "", nil)
	if hook != nil {
		hook(j.id)
	}

	var (
		replayStart time.Time
		wall        time.Duration
		sumStart    time.Time
		sumDur      time.Duration
		summary     *tools.Summary
		rstats      trace.ReplayStats
	)
	attempt := func(workers int, ck *trace.Checkpoint) (err error) {
		// Each attempt gets its own replay span, closed in the deferred
		// epilogue below no matter how the attempt ends — success, failure,
		// watchdog cancellation, or panic. A job retried after a stall thus
		// shows one failed replay span per lost attempt instead of silently
		// dropping them from the tree.
		attemptStart := time.Now()
		var rs *telemetry.Span
		s.mu.Lock()
		if j.span != nil {
			rs = j.span.StartChild("replay", attemptStart)
		}
		s.mu.Unlock()
		defer func() {
			if r := recover(); r != nil {
				s.metrics.jobsPanicked.Inc()
				s.jobLogger(j).Error("analyzer panicked", "phase", "replay", "panic", fmt.Sprint(r))
				err = fmt.Errorf("analyzer panicked: %v\n%s", r, stackFragment())
				// The panic skipped the wall measurement; take it here so the
				// job view doesn't report zero replay time. A replayStart left
				// over from an earlier attempt is stale — re-anchor.
				if replayStart.Before(attemptStart) {
					replayStart = attemptStart
				}
				wall = time.Since(replayStart)
			}
			s.mu.Lock()
			if rs != nil {
				rs.SetCount("events", int64(j.events))
				rs.SetCount("shards", int64(rstats.Workers))
				rs.SetCount("epochs", int64(rstats.Epochs))
				rs.SetCount("maxEpochAccesses", int64(rstats.MaxEpochAccesses))
				if err != nil {
					rs.SetError(err.Error())
				}
				if !replayStart.Before(attemptStart) {
					// This attempt reached the replay: anchor the span to the
					// measured interval so its duration equals the wall time
					// the job view reports, exactly.
					rs.Start = replayStart
					rs.EndAt(replayStart.Add(wall))
				} else {
					// Failed before the replay began (bad tool, fault
					// injection): the span covers the attempt itself.
					rs.EndAt(time.Time{})
				}
			}
			s.publishTraceLocked(j)
			s.mu.Unlock()
		}()
		if err := faultinject.Fire("worker.slow"); err != nil {
			return err
		}
		if err := faultinject.Fire("worker.replay"); err != nil {
			return err
		}
		a, err := tools.New(j.tool)
		if err != nil {
			return err
		}
		if s.cfg.AnalyzerStats {
			if sp, ok := a.(tools.StatsProvider); ok {
				sp.EnableStats()
			}
		}

		// Resume from the checkpoint when the analyzer supports it and the
		// checkpoint matches this job's trace. A checkpoint that fails
		// validation or restore is discarded and the replay starts from
		// scratch: a checkpoint is an optimization, never a requirement.
		var start uint64
		if ck != nil && ck.Tool == j.tool && ck.NextEvent <= uint64(len(tr.Events)) {
			if cp, ok := a.(tools.Checkpointer); ok {
				if rerr := cp.RestoreState(ck.State); rerr != nil {
					s.metrics.checkpointErrors.Inc()
					s.jobLogger(j).Error("checkpoint restore failed; replaying from scratch",
						"phase", "replay", "err", rerr)
					// The failed restore may have half-applied; start clean.
					if a, err = tools.New(j.tool); err != nil {
						return err
					}
					if s.cfg.AnalyzerStats {
						if sp, ok := a.(tools.StatsProvider); ok {
							sp.EnableStats()
						}
					}
				} else {
					start = ck.NextEvent
					s.metrics.checkpointsRestored.Inc()
					s.jobLogger(j).Info("resuming from checkpoint",
						"phase", "replay", "resume_event", start, "events", len(tr.Events))
				}
			}
		}

		base := context.Background()
		cancelTimeout := func() {}
		if s.cfg.ReplayTimeout > 0 {
			base, cancelTimeout = context.WithTimeout(base, s.cfg.ReplayTimeout)
		}
		defer cancelTimeout()
		ctx, cancel := context.WithCancelCause(base)
		defer cancel(nil)

		opts := trace.DurableOptions{
			Workers:    workers,
			StartEvent: start,
			Progress:   trace.NewReplayProgress(),
		}
		if cp, ok := a.(tools.Checkpointer); ok && s.cfg.Journal != nil && s.cfg.CheckpointEvery > 0 {
			opts.CheckpointEvery = s.cfg.CheckpointEvery
			opts.Checkpoint = s.checkpointFunc(ctx, j, cp, uint64(len(tr.Events)))
		}

		replayStart = time.Now()
		if s.cfg.StallTimeout > 0 {
			rstats, err = s.replayWithWatchdog(ctx, cancel, j, tr, opts, a)
		} else {
			rstats, err = tr.ReplayDurable(ctx, opts, a)
		}
		wall = time.Since(replayStart)
		s.metrics.replaySeconds.ObserveDuration(wall)
		s.metrics.replayShards.Observe(float64(rstats.Workers))
		if err != nil {
			return err
		}
		s.metrics.eventsReplayed.Add(uint64(len(tr.Events)) - start)
		sumStart = time.Now()
		summary = tools.Summarize(a)
		sumDur = time.Since(sumStart)
		// The summary has captured findings and footprint; lease the shadow
		// slabs back to the arena for the next job. Clean path only — a
		// failed or panicked attempt just lets the GC take the analyzer.
		if rel, ok := a.(tools.Releaser); ok {
			rel.Release()
		}
		return nil
	}

	err := attempt(s.cfg.ReplayWorkers, ckpt)
	if errors.Is(err, errStalled) {
		s.metrics.watchdogRetries.Inc()
		s.mu.Lock()
		retryCkpt := j.ckpt // freshest: the stalled attempt may have advanced it
		s.mu.Unlock()
		var resume uint64
		if retryCkpt != nil {
			resume = retryCkpt.NextEvent
		}
		delay := watchdogRetryDelay(s.cfg.StallTimeout)
		s.jobLogger(j).Warn("retrying stalled replay sequentially",
			"phase", "replay", "resume_event", resume, "delay", delay)
		time.Sleep(delay)
		err = attempt(1, retryCkpt)
	}

	var resultJSON json.RawMessage
	if err == nil && summary != nil {
		if b, merr := json.Marshal(summary); merr == nil {
			resultJSON = b
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.wall = wall
	j.tr = nil   // release the trace's memory; only the summary is kept
	j.ckpt = nil // terminal: the checkpoint (and its spool file) are obsolete
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = summary
	}
	if j.span != nil {
		if !sumStart.IsZero() {
			ss := j.span.StartChild("summarize", sumStart)
			ss.EndAt(sumStart.Add(sumDur))
			if summary != nil {
				ss.SetCount("issues", int64(summary.Issues))
			}
		}
		if err != nil {
			j.span.SetError(err.Error())
		}
		j.span.EndAt(j.finished)
	}
	s.releaseQuotaLocked(j)
	s.publishTraceLocked(j)
	s.metrics.jobSeconds.ObserveDuration(j.finished.Sub(j.submitted))
	now := j.finished
	s.gcLocked(now)
	s.mu.Unlock()
	if err != nil {
		s.metrics.jobsFailed.Inc()
		s.mark(j, journal.StatusFailed, err.Error(), nil)
	} else {
		s.metrics.jobsCompleted.Inc()
		if summary != nil {
			s.metrics.recordJobStats(summary.Stats)
		}
		s.mark(j, journal.StatusDone, "", resultJSON)
	}
	if s.cfg.Journal != nil {
		if rerr := s.cfg.Journal.RemoveCheckpoint(j.id); rerr != nil {
			s.metrics.journalError("remove")
			s.jobLogger(j).Error("checkpoint remove failed", "phase", "gc", "err", rerr)
		}
	}
}

// watchdogRetryDelay is the full-jitter pause before a stalled replay's
// sequential retry: uniform in [0, StallTimeout/2]. Stalls usually share a
// cause (an overloaded disk, a CPU-starved host, a slow shared dependency),
// so a fleet of jobs whose watchdogs all fired together must not retry in
// lockstep and re-create the very contention that stalled them.
func watchdogRetryDelay(stall time.Duration) time.Duration {
	if stall <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(stall/2) + 1))
}

// checkpointFunc builds the ReplayDurable checkpoint callback for one job:
// serialize the analyzer at the (drained) epoch boundary, write the frame
// into the spool, and remember the checkpoint on the job so a watchdog
// retry resumes from it. Serialization and spool failures are counted and
// logged but never fail the replay — a checkpoint is an optimization. A
// canceled context (watchdog, timeout) aborts the replay instead of
// writing a checkpoint the cancellation has already outdated.
func (s *Service) checkpointFunc(ctx context.Context, j *job, cp tools.Checkpointer, events uint64) func(uint64) error {
	return func(next uint64) error {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		raw, err := cp.CheckpointState()
		if err != nil {
			s.metrics.checkpointErrors.Inc()
			s.jobLogger(j).Error("checkpoint serialize failed", "phase", "replay", "err", err)
			return nil
		}
		ck := &trace.Checkpoint{
			JobID:     j.id,
			Tool:      j.tool,
			NextEvent: next,
			Events:    events,
			Created:   time.Now(),
			State:     raw,
		}
		if err := s.cfg.Journal.WriteCheckpoint(ck); err != nil {
			s.metrics.checkpointErrors.Inc()
			s.metrics.journalError("checkpoint")
			s.jobLogger(j).Error("checkpoint write failed", "phase", "replay", "err", err)
			return nil
		}
		s.metrics.checkpointsWritten.Inc()
		s.metrics.checkpointBytes.Observe(float64(len(raw)))
		s.mu.Lock()
		// Monotone: an abandoned (stalled) attempt racing a watchdog retry
		// must never regress the freshest checkpoint.
		if j.ckpt == nil || ck.NextEvent >= j.ckpt.NextEvent {
			j.ckpt = ck
		}
		s.mu.Unlock()
		if err := faultinject.Fire("worker.crash"); err != nil {
			// Simulated hard crash: exit the goroutine without unwinding, so
			// the journal keeps the job "running" exactly as SIGKILL would
			// and the next Recover resumes it from the checkpoint above.
			s.jobLogger(j).Error("fault injection: crashing after checkpoint", "phase", "replay", "err", err)
			runtime.Goexit()
		}
		return nil
	}
}

// replayWithWatchdog runs the replay on a child goroutine while sampling
// its progress heartbeats. If no heartbeat lands for Config.StallTimeout
// the replay is canceled with errStalled; a replay that then fails to
// acknowledge the cancellation within a further stall timeout is abandoned
// (its goroutine parks until the analyzer code returns, if ever) so the
// worker can move on. A panic on the replay goroutine is re-raised here so
// runJob's panic confinement sees it unchanged.
func (s *Service) replayWithWatchdog(ctx context.Context, cancel context.CancelCauseFunc, j *job, tr *trace.Trace, opts trace.DurableOptions, a tools.Analyzer) (trace.ReplayStats, error) {
	type result struct {
		stats    trace.ReplayStats
		err      error
		panicked bool
		panicVal any
	}
	resCh := make(chan result, 1)
	go func() {
		var res result
		defer func() { resCh <- res }()
		defer func() {
			if r := recover(); r != nil {
				res.panicked = true
				res.panicVal = r
			}
		}()
		res.stats, res.err = tr.ReplayDurable(ctx, opts, a)
	}()

	interval := s.cfg.StallTimeout / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	lastSum := opts.Progress.Sum()
	lastBeat := time.Now()
	for {
		select {
		case res := <-resCh:
			if res.panicked {
				panic(res.panicVal)
			}
			return res.stats, res.err
		case <-ticker.C:
			if sum := opts.Progress.Sum(); sum != lastSum {
				lastSum, lastBeat = sum, time.Now()
				continue
			}
			if time.Since(lastBeat) < s.cfg.StallTimeout {
				continue
			}
			// Stalled: no event was dispatched anywhere in the engine for a
			// full stall timeout.
			s.metrics.jobsStalled.Inc()
			s.jobLogger(j).Warn("replay made no progress; canceling",
				"phase", "replay", "events_done", lastSum, "stall_timeout", s.cfg.StallTimeout)
			cancel(errStalled)
			select {
			case res := <-resCh:
				if res.panicked {
					panic(res.panicVal)
				}
				if res.err == nil {
					// The replay finished in a race with the cancellation.
					return res.stats, nil
				}
				return res.stats, fmt.Errorf("%w (%v)", errStalled, res.err)
			case <-time.After(s.cfg.StallTimeout):
				// The replay never reached a cancellation check: a worker is
				// wedged inside analyzer code. Abandon the goroutine — the
				// buffered channel lets it exit whenever it wakes up.
				s.jobLogger(j).Error("stalled replay did not acknowledge cancellation; abandoning it",
					"phase", "replay")
				return trace.ReplayStats{}, errStalled
			}
		}
	}
}

// stackFragment captures a bounded slice of the panicking goroutine's
// stack for the job's error message.
func stackFragment() string {
	buf := make([]byte, 4096)
	n := runtime.Stack(buf, false)
	frag := string(buf[:n])
	// Keep the panic site readable without shipping pages of runtime
	// frames into every job view.
	if lines := strings.SplitAfter(frag, "\n"); len(lines) > 12 {
		frag = strings.Join(lines[:12], "") + "\t...\n"
	}
	return frag
}

// GC applies the retention policy immediately (it also runs as jobs
// finish and on submissions). It reports how many jobs were evicted.
func (s *Service) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked(time.Now())
}

// gcLocked evicts terminal jobs beyond MaxFinishedJobs (oldest-finished
// first) or older than MaxJobAge, along with their spool files and
// idempotency keys. The caller must hold s.mu.
func (s *Service) gcLocked(now time.Time) int {
	maxJobs := s.cfg.MaxFinishedJobs
	if maxJobs < 0 && s.cfg.MaxJobAge <= 0 {
		return 0
	}
	finished := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j.status == StatusDone || j.status == StatusFailed {
			finished++
		}
	}
	evicted := 0
	// s.order is submission order; finished jobs encountered first are
	// the oldest, so one pass evicts in the right order.
	excess := 0
	if maxJobs >= 0 {
		excess = finished - maxJobs
	}
	if excess <= 0 && s.cfg.MaxJobAge <= 0 {
		return 0
	}
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		terminal := j.status == StatusDone || j.status == StatusFailed
		evict := false
		if terminal {
			if excess > 0 {
				evict = true
				excess--
			} else if s.cfg.MaxJobAge > 0 && !j.finished.IsZero() && now.Sub(j.finished) > s.cfg.MaxJobAge {
				evict = true
			}
		}
		if !evict {
			keep = append(keep, id)
			continue
		}
		delete(s.jobs, id)
		if j.key != "" {
			delete(s.keys, j.key)
		}
		// Trace retention never outlives job retention: the evicted job's
		// trace leaves the store with it.
		if j.span != nil && j.span.TraceID != "" {
			s.traces.Remove(j.span.TraceID)
		}
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Remove(id); err != nil {
				s.jobLogger(j).Error("journal remove failed", "phase", "gc", "err", err)
			}
		}
		evicted++
	}
	s.order = keep
	if evicted > 0 {
		s.metrics.jobsEvicted.Add(uint64(evicted))
	}
	return evicted
}
