package service

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestDiskFullFailsJobNotDaemon simulates the spool disk filling up: the
// submission that hits the write failure is rejected (that job alone
// fails), the daemon keeps serving, /readyz degrades to 503 while the spool
// is unwritable, the failure is counted per-op in journal_errors_total, and
// everything heals once space returns.
func TestDiskFullFailsJobNotDaemon(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	jnl := newJournal(t)
	s := New(Config{Workers: 1, QueueSize: 8, Journal: jnl})
	s.Start()
	defer shutdownOrFail(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before fault: %d, want 200", code)
	}

	// The disk fills up.
	faultinject.Enable("journal.append", faultinject.Fault{Err: errors.New("no space left on device")})

	resp := postTrace(t, srv.URL, "arbalest", tr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on full disk: %d, want 503", resp.StatusCode)
	}

	// Only that submission failed; the daemon itself stays up...
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz on full disk: %d, want 200", code)
	}
	// ...but readiness reports the unwritable spool.
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "journal spool unwritable") {
		t.Fatalf("readyz on full disk: %d %q, want 503 mentioning the spool", code, body)
	}
	// The failure is attributed per-op on /metrics.
	if _, body := get("/metrics"); !strings.Contains(body, `arbalestd_journal_errors_total{op="append"} 1`) {
		t.Fatalf("metrics missing the per-op journal error count:\n%s", body)
	}
	if s.Metrics().Snapshot().JournalErrors != 1 {
		t.Fatalf("snapshot journal errors = %d, want 1", s.Metrics().Snapshot().JournalErrors)
	}

	// Space returns: readiness heals (the probe rechecks the spool) and a
	// fresh submission runs end to end.
	faultinject.Disable("journal.append")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get("/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never healed after the disk fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = postTrace(t, srv.URL, "arbalest", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after heal: %d, want 202", resp.StatusCode)
	}
	v := decodeView(t, resp)
	got := waitSettled(t, s, v.ID)
	if got.Status != StatusDone {
		t.Fatalf("post-heal job: status %s (%s)", got.Status, got.Error)
	}
	assertSameFindings(t, "post-heal job", got.Result, want)
}
