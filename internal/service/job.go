package service

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
)

// Status is a job's position in its lifecycle.
type Status string

// The job lifecycle states. Jobs move pending -> running -> done|failed.
const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// job is the service's internal mutable record for one submitted trace.
// All fields are guarded by Service.mu after construction.
type job struct {
	id        string
	tool      string
	key       string // idempotency key, "" if none
	status    Status
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    int
	tr        *trace.Trace // released (nil) once the job finishes
	result    *tools.Summary
	wall      time.Duration
	errMsg    string

	// tenant is the canonical identity the job was admitted under; it keys
	// the weighted-fair queue and the per-tenant metric labels.
	tenant string
	// deadline, when non-zero, is the client's completion deadline; a job
	// still queued past it is shed at dequeue instead of replayed.
	deadline time.Time
	// bytes is the upload's wire size, charged against the tenant's byte
	// quota while the job is live.
	bytes int64
	// quotaHeld records that the tenant's job slot and bytes are reserved
	// and not yet released, so every terminal path (finish, shed, remote
	// completion) releases exactly once.
	quotaHeld bool

	// enqueued is when the job entered the queue (zero for restored
	// history); the queue-wait histogram observes pickup minus this.
	enqueued time.Time
	// ckpt is the job's freshest analyzer-state checkpoint: attached at
	// recovery from the spool, advanced as the replay writes new ones,
	// cleared when the job reaches a terminal state. A watchdog retry
	// resumes from it.
	ckpt *trace.Checkpoint
	// span is the job's trace tree, built under Service.mu and served as
	// a Clone. Nil for jobs restored from the journal as history.
	span *telemetry.Span
	// tc is the job's distributed trace context, stamped at admission
	// (zero for untraced, unsampled, or recovered jobs) and immutable once
	// the job is published.
	tc telemetry.TraceContext
	// leaseSpans maps fencing token -> the "lease" child span opened when
	// the coordinator granted that lease; worker span shipments merge under
	// the entry matching their token.
	leaseSpans map[uint64]*telemetry.Span
}

// JobView is the immutable, JSON-serializable snapshot of a job that the
// service's accessors and HTTP API return.
type JobView struct {
	ID        string         `json:"id"`
	Tool      string         `json:"tool"`
	Tenant    string         `json:"tenant,omitempty"`
	Status    Status         `json:"status"`
	Submitted time.Time      `json:"submitted"`
	Deadline  *time.Time     `json:"deadline,omitempty"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Events    int            `json:"events"`
	WallNanos int64          `json:"wallNanos,omitempty"`
	Error     string         `json:"error,omitempty"`
	Result    *tools.Summary `json:"result,omitempty"`
	// Trace is the job's span tree (nil for jobs recovered as history).
	Trace *telemetry.Span `json:"trace,omitempty"`
	// TraceID is the job's distributed trace id, usable against
	// GET /v1/traces/{id}; empty for untraced or unsampled jobs.
	TraceID string `json:"traceId,omitempty"`
}

// viewLocked snapshots the job; the caller must hold Service.mu.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:        j.id,
		Tool:      j.tool,
		Tenant:    j.tenant,
		Status:    j.status,
		Submitted: j.submitted,
		Events:    j.events,
		WallNanos: int64(j.wall),
		Error:     j.errMsg,
		Result:    j.result,
		Trace:     j.span.Clone(),
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		v.Deadline = &t
	}
	if j.span != nil {
		v.TraceID = j.span.TraceID
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
