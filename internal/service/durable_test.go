package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/tools"
)

// assertSameFindings requires the daemon's result to carry byte-identical
// findings to the one-shot replay: same issue count, same kind histogram,
// same rendered reports in the same order.
func assertSameFindings(t *testing.T, label string, got, want *tools.Summary) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", label)
	}
	if got.Issues != want.Issues || !reflect.DeepEqual(got.KindCounts, want.KindCounts) {
		t.Fatalf("%s: %d issues %v, want %d issues %v", label, got.Issues, got.KindCounts, want.Issues, want.KindCounts)
	}
	gj, _ := json.Marshal(got.Reports)
	wj, _ := json.Marshal(want.Reports)
	if string(gj) != string(wj) {
		t.Fatalf("%s: reports differ\ngot:  %s\nwant: %s", label, gj, wj)
	}
}

// TestCrashAfterCheckpointResumes is the end-to-end crash/resume path: a
// simulated SIGKILL lands right after the first checkpoint is durably
// written, a second service life recovers the spool, resumes from the
// checkpoint, and produces the same findings an uninterrupted run would.
func TestCrashAfterCheckpointResumes(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl, CheckpointEvery: 1})
	faultinject.Enable("worker.crash", faultinject.Fault{Err: errors.New("simulated SIGKILL"), Count: 1})
	s1.Start()
	v, err := s1.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}

	// The injected crash kills the replay goroutine immediately after the
	// first checkpoint reaches disk, leaving the job running in the journal
	// — exactly the state a power cut would leave behind.
	ckptPath := filepath.Join(dir, v.ID+".ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil && s1.Metrics().Snapshot().CheckpointsWritten >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never appeared on disk")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the Goexit unwind finish
	faultinject.Reset()
	// s1 is abandoned without shutdown, as a real crash would abandon it.

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl2, CheckpointEvery: 4})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("recovered %d jobs, want 1", requeued)
	}
	s2.Start()
	got := waitSettled(t, s2, v.ID)
	if got.Status != StatusDone {
		t.Fatalf("resumed job status %q (err %q), want done", got.Status, got.Error)
	}
	assertSameFindings(t, "resumed job", got.Result, want)
	if n := s2.Metrics().Snapshot().CheckpointsRestored; n < 1 {
		t.Errorf("CheckpointsRestored = %d, want >= 1", n)
	}
	shutdownOrFail(t, s2)
	if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("terminal job's checkpoint not cleaned up: stat err %v", err)
	}
}

// TestWatchdogRetriesStalledReplay wedges the first replay attempt (a
// checkpoint write that hangs well past the stall timeout) and requires the
// watchdog to detect the flat heartbeat, cancel the attempt, and finish the
// job on the sequential retry with correct findings.
func TestWatchdogRetriesStalledReplay(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	jnl := newJournal(t)
	s := New(Config{
		Workers:         1,
		QueueSize:       8,
		Journal:         jnl,
		CheckpointEvery: 1,
		StallTimeout:    150 * time.Millisecond,
	})
	faultinject.Enable("journal.checkpoint", faultinject.Fault{Delay: 3 * time.Second, Count: 1})
	s.Start()
	v, err := s.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	got := waitSettled(t, s, v.ID)
	if got.Status != StatusDone {
		t.Fatalf("job status %q (err %q), want done after watchdog retry", got.Status, got.Error)
	}
	assertSameFindings(t, "retried job", got.Result, want)
	snap := s.Metrics().Snapshot()
	if snap.JobsStalled < 1 {
		t.Errorf("JobsStalled = %d, want >= 1", snap.JobsStalled)
	}
	if snap.WatchdogRetries != 1 {
		t.Errorf("WatchdogRetries = %d, want 1", snap.WatchdogRetries)
	}
	shutdownOrFail(t, s)
}

// TestChaosCrashResume crashes three replays mid-flight across a four-worker
// pool under load, then verifies the next service life resumes exactly those
// three from their checkpoints and every job in the fleet ends with the
// uninterrupted-run findings.
func TestChaosCrashResume(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Seed(20260805)
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")
	const jobs, crashes = 12, 3

	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 4, QueueSize: 64, Journal: jnl, CheckpointEvery: 1, MaxFinishedJobs: -1})
	faultinject.Enable("worker.crash", faultinject.Fault{Err: errors.New("chaos crash"), Count: crashes})
	s1.Start()
	ids := make([]string, jobs)
	for i := range ids {
		v, _, err := s1.SubmitKeyed("arbalest", fmt.Sprintf("chaos-%d", i), tr)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}

	// Each crash eats one worker at its job's first checkpoint, so the pool
	// converges to jobs-crashes terminal jobs and exactly crashes stuck ones.
	deadline := time.Now().Add(60 * time.Second)
	for {
		terminal, running := 0, 0
		for _, v := range s1.Jobs() {
			switch v.Status {
			case StatusDone, StatusFailed:
				terminal++
			case StatusRunning:
				running++
			}
		}
		if terminal == jobs-crashes && running == crashes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first life never converged: %d terminal %d running", terminal, running)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var crashed []string
	for _, v := range s1.Jobs() {
		if v.Status == StatusRunning {
			crashed = append(crashed, v.ID)
		}
		if v.Status == StatusFailed {
			t.Errorf("job %s failed in first life: %s", v.ID, v.Error)
		}
	}
	time.Sleep(20 * time.Millisecond)
	faultinject.Reset()
	// Abandoned, not shut down: the three stuck jobs must stay "running" in
	// the journal for the next life to find.

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, QueueSize: 64, Journal: jnl2, CheckpointEvery: 4, MaxFinishedJobs: -1})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != crashes {
		t.Fatalf("second life recovered %d jobs, want %d", requeued, crashes)
	}
	s2.Start()
	for _, id := range crashed {
		got := waitSettled(t, s2, id)
		if got.Status != StatusDone {
			t.Fatalf("resumed job %s status %q (err %q), want done", id, got.Status, got.Error)
		}
		assertSameFindings(t, "resumed "+id, got.Result, want)
	}
	// History and resumed jobs together: every submitted job, exactly once.
	views := s2.Jobs()
	if len(views) != jobs {
		t.Fatalf("second life sees %d jobs, want %d", len(views), jobs)
	}
	for _, v := range views {
		if v.Status != StatusDone {
			t.Errorf("job %s status %q, want done", v.ID, v.Status)
		}
	}
	if n := s2.Metrics().Snapshot().CheckpointsRestored; n != crashes {
		t.Errorf("CheckpointsRestored = %d, want %d", n, crashes)
	}
	shutdownOrFail(t, s2)
}

// TestCorruptSpoolSurvivesRecovery: one corrupt trace file in the spool must
// not take recovery down with it — the damaged job is skipped (counted in
// the journal-errors metric) and the healthy one completes.
func TestCorruptSpoolSurvivesRecovery(t *testing.T) {
	tr := recordTrace(t, 22)
	want := oneShot(t, tr, "arbalest")

	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl})
	// Never started: both jobs stay pending in the spool, as if the daemon
	// died before its workers picked them up.
	va, err := s1.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := s1.Submit("arbalest", tr)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, va.ID+".trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, QueueSize: 8, Journal: jnl2})
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the uncorrupted one)", requeued)
	}
	if n := s2.Metrics().Snapshot().JournalErrors; n < 1 {
		t.Errorf("JournalErrors = %d, want >= 1", n)
	}
	s2.Start()
	got := waitSettled(t, s2, vb.ID)
	if got.Status != StatusDone {
		t.Fatalf("healthy job status %q (err %q), want done", got.Status, got.Error)
	}
	assertSameFindings(t, "healthy job", got.Result, want)
	shutdownOrFail(t, s2)
}
