package tools_test

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/tools"
)

// runMapped drives a small mapped-region workload (alloc, host init, map
// to device, kernel store, map back) through the analyzer, enough to move
// shadow words through several VSM states.
func runMapped(t *testing.T, a tools.Analyzer) {
	t.Helper()
	rt := omp.NewRuntime(omp.Config{NumThreads: 2, ForceSync: true}, a)
	err := rt.Run(func(c *omp.Context) error {
		v := c.AllocI64(8, "v")
		for i := 0; i < 8; i++ {
			c.StoreI64(v, i, int64(i))
		}
		c.Target(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(k *omp.Context) {
			for i := 0; i < 8; i++ {
				k.StoreI64(v, i, 2*k.LoadI64(v, i))
			}
		})
		for i := 0; i < 8; i++ {
			_ = c.LoadI64(v, i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSummaryStatsEnabled: with stats enabled before the run, the summary
// carries a populated analyzer-stats block whose transition names use the
// paper's state vocabulary.
func TestSummaryStatsEnabled(t *testing.T) {
	af := tools.NewArbalestFull(nil)
	if af.EnableStats() == nil {
		t.Fatal("EnableStats returned nil")
	}
	runMapped(t, af)

	sum := tools.Summarize(af)
	if sum.Stats == nil {
		t.Fatal("summary has no stats despite EnableStats")
	}
	st := sum.Stats
	if st.Accesses == 0 {
		t.Error("stats recorded zero accesses")
	}
	if st.IntervalLookups == 0 {
		t.Error("stats recorded zero interval lookups")
	}
	if len(st.VSMTransitions) == 0 {
		t.Fatal("stats recorded zero VSM transitions")
	}
	valid := map[string]bool{"invalid": true, "host": true, "target": true, "consistent": true}
	var total uint64
	for _, tr := range st.VSMTransitions {
		if !valid[tr.From] || !valid[tr.To] {
			t.Errorf("transition uses non-VSM state names: %+v", tr)
		}
		if tr.Count == 0 {
			t.Errorf("zero-count transition emitted: %+v", tr)
		}
		total += tr.Count
	}
	// Host init, to-device map, kernel stores, from-device map: the word
	// states must have moved at least once per word.
	if total < 8 {
		t.Errorf("only %d transitions for an 8-word mapped workload", total)
	}
}

// TestSummaryStatsDisabled: without EnableStats the summary carries no
// stats block and AnalyzerStats stays nil (the zero-overhead mode).
func TestSummaryStatsDisabled(t *testing.T) {
	af := tools.NewArbalestFull(nil)
	runMapped(t, af)
	if af.AnalyzerStats() != nil {
		t.Fatal("AnalyzerStats non-nil without EnableStats")
	}
	if sum := tools.Summarize(af); sum.Stats != nil {
		t.Fatalf("summary has stats without EnableStats: %+v", sum.Stats)
	}
}

// TestEnableStatsIdempotent: enabling twice keeps the same collector, so
// counts are never split across instances.
func TestEnableStatsIdempotent(t *testing.T) {
	af := tools.NewArbalestFull(nil)
	first := af.EnableStats()
	if second := af.EnableStats(); second != first {
		t.Fatal("EnableStats replaced the collector")
	}
	runMapped(t, af)
	if af.AnalyzerStats() != first {
		t.Fatal("AnalyzerStats returned a different collector")
	}
}
