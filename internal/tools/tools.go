// Package tools assembles analysis-tool configurations for the evaluation
// harnesses: it provides the uniform Analyzer interface over ARBALEST, the
// Archer-analogue race detector, and the Valgrind/ASan/MSan analogues, plus
// the composite configuration the paper evaluates (ARBALEST is built on
// Archer and runs its race detection alongside the VSM analysis, §V).
package tools

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/ompt"
	"repro/internal/race"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Analyzer is the common surface of every analysis tool in this repository.
type Analyzer interface {
	ompt.Tool
	// Sink returns the tool's report sink.
	Sink() *report.Sink
	// ShadowBytes returns the tool's peak shadow-state footprint.
	ShadowBytes() uint64
}

// Releaser is implemented by analyzers whose shadow state is leased from
// a pooled arena. Release returns the slabs for reuse by the next job; it
// must only be called after the last event and the final Summarize/
// CheckpointState of the analyzer.
type Releaser interface {
	Release()
}

// Names lists the tool names accepted by New, in the column order of the
// paper's Table III.
func Names() []string {
	return []string{"arbalest", "valgrind", "archer", "asan", "msan"}
}

// Options configures analyzer construction and replay.
type Options struct {
	// Stats enables analyzer-level telemetry collection (StatsProvider
	// analyzers only; ignored for the rest).
	Stats bool
	// Parallelism is the replay worker count: 1 dispatches sequentially,
	// n > 1 fans access analysis out across n goroutines, and 0 means
	// GOMAXPROCS. Analyzers that require sequential replay (e.g. ARBALEST
	// in region or byte granularity) force 1 regardless.
	Parallelism int
}

// NewWithOptions creates the named tool and applies opts.
func NewWithOptions(name string, opts Options) (Analyzer, error) {
	a, err := New(name)
	if err != nil {
		return nil, err
	}
	if opts.Stats {
		if sp, ok := a.(StatsProvider); ok {
			sp.EnableStats()
		}
	}
	return a, nil
}

// Replay drives tr through a with opts.Parallelism workers, returning the
// engine's statistics. The findings are identical to sequential replay; see
// trace.ReplayParallel.
func Replay(ctx context.Context, tr *trace.Trace, a Analyzer, opts Options) (trace.ReplayStats, error) {
	return tr.ReplayParallel(ctx, opts.Parallelism, a)
}

// New creates the named tool. Valid names are "arbalest" (VSM detector plus
// its embedded Archer race detection), "arbalest-vsm" (VSM only), "archer",
// "valgrind", "asan", and "msan".
func New(name string) (Analyzer, error) {
	switch name {
	case "arbalest":
		sink := report.NewSink()
		return NewArbalestFull(sink), nil
	case "arbalest-vsm":
		return core.New(core.Options{}), nil
	case "archer":
		return race.New(nil), nil
	case "valgrind":
		return baselines.NewMemcheck(nil), nil
	case "asan":
		return baselines.NewASan(nil), nil
	case "msan":
		return baselines.NewMSan(nil), nil
	}
	return nil, fmt.Errorf("tools: unknown tool %q (valid: arbalest, arbalest-vsm, archer, valgrind, asan, msan)", name)
}

// ArbalestFull is ARBALEST as evaluated in the paper: the VSM-based mapping
// issue detector running on top of Archer's race detection, sharing one
// report sink.
type ArbalestFull struct {
	vsm  *core.Arbalest
	race *race.Detector
	sink *report.Sink
}

// NewArbalestFull builds the composite with a shared sink (fresh when nil).
func NewArbalestFull(sink *report.Sink) *ArbalestFull {
	if sink == nil {
		sink = report.NewSink()
	}
	return &ArbalestFull{
		vsm:  core.New(core.Options{Sink: sink}),
		race: race.New(sink),
		sink: sink,
	}
}

// VSM returns the embedded mapping-issue detector.
func (a *ArbalestFull) VSM() *core.Arbalest { return a.vsm }

// RequiresSequentialReplay forwards the VSM component's constraint (region
// and byte granularity cannot take parallel dispatch; the race detector has
// no such modes).
func (a *ArbalestFull) RequiresSequentialReplay() bool { return a.vsm.RequiresSequentialReplay() }

// EnableStats implements StatsProvider by enabling collection on the VSM
// component (the race detector is not instrumented).
func (a *ArbalestFull) EnableStats() *telemetry.AnalyzerStats { return a.vsm.EnableStats() }

// AnalyzerStats implements StatsProvider.
func (a *ArbalestFull) AnalyzerStats() *telemetry.AnalyzerStats { return a.vsm.AnalyzerStats() }

// AccessCount returns the number of instrumented accesses the VSM
// component analyzed.
func (a *ArbalestFull) AccessCount() uint64 { return a.vsm.AccessCount() }

// Race returns the embedded race detector.
func (a *ArbalestFull) Race() *race.Detector { return a.race }

// Name implements ompt.Tool.
func (a *ArbalestFull) Name() string { return "Arbalest" }

// Sink returns the shared report sink.
func (a *ArbalestFull) Sink() *report.Sink { return a.sink }

// ShadowBytes sums the two components' shadow state.
func (a *ArbalestFull) ShadowBytes() uint64 { return a.vsm.ShadowBytes() + a.race.ShadowBytes() }

// OnDeviceInit implements ompt.Tool.
func (a *ArbalestFull) OnDeviceInit(e ompt.DeviceInitEvent) {
	a.vsm.OnDeviceInit(e)
	a.race.OnDeviceInit(e)
}

// OnTargetBegin implements ompt.Tool.
func (a *ArbalestFull) OnTargetBegin(e ompt.TargetEvent) {
	a.vsm.OnTargetBegin(e)
	a.race.OnTargetBegin(e)
}

// OnTargetEnd implements ompt.Tool.
func (a *ArbalestFull) OnTargetEnd(e ompt.TargetEvent) {
	a.vsm.OnTargetEnd(e)
	a.race.OnTargetEnd(e)
}

// OnDataOp implements ompt.Tool.
func (a *ArbalestFull) OnDataOp(e ompt.DataOpEvent) {
	a.vsm.OnDataOp(e)
	a.race.OnDataOp(e)
}

// OnAccess implements ompt.Tool.
func (a *ArbalestFull) OnAccess(e ompt.AccessEvent) {
	a.vsm.OnAccess(e)
	a.race.OnAccess(e)
}

// OnAccessBatch implements ompt.BatchTool: both components consume the
// columnar batch, in the same vsm-then-race order as the per-event path.
func (a *ArbalestFull) OnAccessBatch(b *ompt.AccessBatch) {
	a.vsm.OnAccessBatch(b)
	a.race.OnAccessBatch(b)
}

// SetDispatchMode implements ompt.ModalTool.
func (a *ArbalestFull) SetDispatchMode(m ompt.DispatchMode) {
	a.vsm.SetDispatchMode(m)
	a.race.SetDispatchMode(m)
}

// Release implements Releaser: the VSM component's shadow slabs go back
// to the arena and the race detector's cell pages to their pool, ready
// for the next job.
func (a *ArbalestFull) Release() {
	a.vsm.Release()
	a.race.Release()
}

// OnSync implements ompt.Tool.
func (a *ArbalestFull) OnSync(e ompt.SyncEvent) {
	a.vsm.OnSync(e)
	a.race.OnSync(e)
}

// OnAlloc implements ompt.Tool.
func (a *ArbalestFull) OnAlloc(e ompt.AllocEvent) {
	a.vsm.OnAlloc(e)
	a.race.OnAlloc(e)
}

var (
	_ Analyzer = (*ArbalestFull)(nil)
	_ Analyzer = (*core.Arbalest)(nil)
	_ Analyzer = (*race.Detector)(nil)
	_ Analyzer = (*baselines.ASan)(nil)
	_ Analyzer = (*baselines.MSan)(nil)
	_ Analyzer = (*baselines.Memcheck)(nil)
)
