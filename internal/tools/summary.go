package tools

import (
	"repro/internal/report"
	"repro/internal/shadow"
	"repro/internal/telemetry"
)

// Summary is the JSON-serializable outcome of running an Analyzer over one
// execution or trace. It is the result schema served by the arbalestd
// analysis service and printed by `arbalest -json`.
type Summary struct {
	// Tool is the analyzer's display name (e.g. "Arbalest").
	Tool string `json:"tool"`
	// Issues is the number of distinct diagnostics.
	Issues int `json:"issues"`
	// KindCounts maps each diagnostic kind label to its report count.
	KindCounts map[string]int `json:"kindCounts,omitempty"`
	// ShadowBytes is the analyzer's peak shadow-state footprint.
	ShadowBytes uint64 `json:"shadowBytes"`
	// Reports holds the full diagnostics, in insertion order.
	Reports []report.Report `json:"reports,omitempty"`
	// Stats holds analyzer-level telemetry when the analyzer collected it
	// (a StatsProvider with stats enabled); nil otherwise.
	Stats *Stats `json:"stats,omitempty"`
}

// TransitionStat is one cell of the VSM transition matrix: how many times
// the analysis moved a shadow word from state From to state To.
type TransitionStat struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count uint64 `json:"count"`
}

// Stats is the analyzer-level telemetry block of a Summary: what the VSM
// engine actually did during the replay, in the terms the paper evaluates
// (state transitions, lock-free CAS behavior, interval-tree traffic).
type Stats struct {
	// Accesses is the number of instrumented accesses analyzed.
	Accesses uint64 `json:"accesses,omitempty"`
	// VSMTransitions lists every (from, to) state pair that occurred, in
	// state order, with its count.
	VSMTransitions []TransitionStat `json:"vsmTransitions,omitempty"`
	// ShadowCASRetries is the number of failed compare-and-swap attempts
	// on shadow words (contention on the lock-free path, paper §IV-C).
	ShadowCASRetries uint64 `json:"shadowCASRetries"`
	// IntervalLookups is the number of index searches (binary searches of
	// the published region/CV snapshots) performed to resolve addresses to
	// shadow state or CV mappings.
	IntervalLookups uint64 `json:"intervalLookups"`
	// RegionMemoHits is the number of lookups satisfied by a last-hit memo
	// instead of an index search (sequential and epoch-sharded replay).
	RegionMemoHits uint64 `json:"regionMemoHits,omitempty"`
}

// StatsProvider is implemented by analyzers that can collect analyzer-level
// telemetry. EnableStats must be called before the analyzer sees events;
// AnalyzerStats returns nil while stats are disabled.
type StatsProvider interface {
	EnableStats() *telemetry.AnalyzerStats
	AnalyzerStats() *telemetry.AnalyzerStats
}

// Summarize captures a's diagnostics, shadow footprint, and (when
// collected) analyzer-level stats as a Summary.
func Summarize(a Analyzer) *Summary {
	reports := a.Sink().Reports()
	s := &Summary{
		Tool:        a.Name(),
		Issues:      len(reports),
		ShadowBytes: a.ShadowBytes(),
	}
	if len(reports) > 0 {
		s.KindCounts = make(map[string]int)
		s.Reports = make([]report.Report, 0, len(reports))
		for _, r := range reports {
			s.KindCounts[r.Kind.Label()]++
			s.Reports = append(s.Reports, *r)
		}
	}
	if sp, ok := a.(StatsProvider); ok {
		if st := sp.AnalyzerStats(); st != nil {
			s.Stats = buildStats(a, st)
		}
	}
	return s
}

// buildStats converts a raw telemetry collector into the Summary schema,
// naming states with the paper's vocabulary (shadow.State).
func buildStats(a Analyzer, st *telemetry.AnalyzerStats) *Stats {
	out := &Stats{
		ShadowCASRetries: st.CASRetries(),
		IntervalLookups:  st.TreeLookups(),
		RegionMemoHits:   st.MemoHits(),
	}
	if ac, ok := a.(interface{ AccessCount() uint64 }); ok {
		out.Accesses = ac.AccessCount()
	}
	for from := uint8(0); from < telemetry.NumVSMStates; from++ {
		for to := uint8(0); to < telemetry.NumVSMStates; to++ {
			if n := st.TransitionCount(from, to); n > 0 {
				out.VSMTransitions = append(out.VSMTransitions, TransitionStat{
					From:  shadow.State(from).String(),
					To:    shadow.State(to).String(),
					Count: n,
				})
			}
		}
	}
	return out
}
