package tools

import "repro/internal/report"

// Summary is the JSON-serializable outcome of running an Analyzer over one
// execution or trace. It is the result schema served by the arbalestd
// analysis service and printed by `arbalest -json`.
type Summary struct {
	// Tool is the analyzer's display name (e.g. "Arbalest").
	Tool string `json:"tool"`
	// Issues is the number of distinct diagnostics.
	Issues int `json:"issues"`
	// KindCounts maps each diagnostic kind label to its report count.
	KindCounts map[string]int `json:"kindCounts,omitempty"`
	// ShadowBytes is the analyzer's peak shadow-state footprint.
	ShadowBytes uint64 `json:"shadowBytes"`
	// Reports holds the full diagnostics, in insertion order.
	Reports []report.Report `json:"reports,omitempty"`
}

// Summarize captures a's diagnostics and shadow footprint as a Summary.
func Summarize(a Analyzer) *Summary {
	reports := a.Sink().Reports()
	s := &Summary{
		Tool:        a.Name(),
		Issues:      len(reports),
		ShadowBytes: a.ShadowBytes(),
	}
	if len(reports) > 0 {
		s.KindCounts = make(map[string]int)
		s.Reports = make([]report.Report, 0, len(reports))
		for _, r := range reports {
			s.KindCounts[r.Kind.Label()]++
			s.Reports = append(s.Reports, *r)
		}
	}
	return s
}
