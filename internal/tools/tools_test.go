package tools_test

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/report"
	"repro/internal/tools"
)

func TestNamesMatchTableIIIColumns(t *testing.T) {
	want := []string{"arbalest", "valgrind", "archer", "asan", "msan"}
	got := tools.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewReturnsDistinctInstances(t *testing.T) {
	a, err := tools.New("arbalest")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tools.New("arbalest")
	if err != nil {
		t.Fatal(err)
	}
	if a.Sink() == b.Sink() {
		t.Error("two arbalest instances share a sink")
	}
}

func TestCompositeRaceAndVSMReportTogether(t *testing.T) {
	af := tools.NewArbalestFull(nil)
	rt := omp.NewRuntime(omp.Config{NumThreads: 2}, af)
	_ = rt.Run(func(c *omp.Context) error {
		v := c.AllocI64(4, "v")
		for i := 0; i < 4; i++ {
			c.StoreI64(v, i, 1)
		}
		// A staleness bug (VSM component)...
		c.Target(omp.Opts{Maps: []omp.Map{omp.To(v)}}, func(k *omp.Context) {
			k.StoreI64(v, 0, 2)
		})
		_ = c.At("t.go", 9, "main").LoadI64(v, 0)
		// ...and a racy pair of nowait kernels (race component).
		gate := make(chan struct{})
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("t.go", 12, "main")}, func(k *omp.Context) {
				k.At("t.go", 13, "k1").StoreI64(v, 1, 5)
				close(gate)
			})
			c.Target(omp.Opts{Nowait: true, Loc: omp.Loc("t.go", 15, "main")}, func(k *omp.Context) {
				<-gate
				k.At("t.go", 16, "k2").StoreI64(v, 1, 6)
			})
			c.TaskWait()
		})
		return nil
	})
	if af.Sink().CountKind(report.USD) == 0 {
		t.Error("composite missed the staleness")
	}
	if af.Sink().CountKind(report.DataRace) == 0 {
		t.Error("composite missed the race")
	}
}

func TestVSMOnlyVariantHasNoRaceDetection(t *testing.T) {
	a, err := tools.New("arbalest-vsm")
	if err != nil {
		t.Fatal(err)
	}
	rt := omp.NewRuntime(omp.Config{NumThreads: 2}, a)
	_ = rt.Run(func(c *omp.Context) error {
		v := c.AllocI64(1, "v")
		c.StoreI64(v, 0, 1)
		gate := make(chan struct{})
		c.TargetData(omp.Opts{Maps: []omp.Map{omp.ToFrom(v)}}, func(c *omp.Context) {
			c.Target(omp.Opts{Nowait: true}, func(k *omp.Context) {
				k.StoreI64(v, 0, 2)
				close(gate)
			})
			<-gate
		})
		c.TaskWait()
		return nil
	})
	if a.Sink().CountKind(report.DataRace) != 0 {
		t.Error("VSM-only variant reported a race")
	}
}
