package tools

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/report"
)

// Checkpointer is implemented by analyzers whose full analysis state can be
// serialized at an epoch boundary and restored into a fresh instance of the
// same tool. The service checkpoints only analyzers that implement it; the
// rest simply re-run from scratch after a crash, as before.
type Checkpointer interface {
	// CheckpointState serializes the analyzer's state. Must only be called
	// at an epoch barrier (no access dispatch in flight).
	CheckpointState() (json.RawMessage, error)
	// RestoreState loads state captured by CheckpointState into a freshly
	// constructed analyzer of the same tool.
	RestoreState(json.RawMessage) error
}

// arbalestFullState composes the component snapshots: the VSM detector and
// race detector serialize their analysis state without the report sink, and
// the shared sink is serialized exactly once.
type arbalestFullState struct {
	VSM  core.State       `json:"vsm"`
	Race race.State       `json:"race"`
	Sink report.SinkState `json:"sink"`
}

// CheckpointState implements Checkpointer.
func (a *ArbalestFull) CheckpointState() (json.RawMessage, error) {
	st := arbalestFullState{
		VSM:  a.vsm.Snapshot(),
		Race: a.race.Snapshot(),
		Sink: a.sink.Snapshot(),
	}
	return json.Marshal(st)
}

// RestoreState implements Checkpointer.
func (a *ArbalestFull) RestoreState(raw json.RawMessage) error {
	var st arbalestFullState
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	if err := a.vsm.Restore(st.VSM); err != nil {
		return err
	}
	if err := a.race.Restore(st.Race); err != nil {
		return err
	}
	return a.sink.Restore(st.Sink)
}

var _ Checkpointer = (*ArbalestFull)(nil)
