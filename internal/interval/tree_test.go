package interval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertStab(t *testing.T) {
	tr := New[string]()
	if err := tr.Insert(10, 20, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(30, 40, "b"); err != nil {
		t.Fatal(err)
	}
	iv, v, ok := tr.Stab(15)
	if !ok || v != "a" || iv.Lo != 10 || iv.Hi != 20 {
		t.Errorf("Stab(15) = %v %q %t", iv, v, ok)
	}
	if _, _, ok := tr.Stab(25); ok {
		t.Error("Stab(25) should miss")
	}
	if _, _, ok := tr.Stab(20); ok {
		t.Error("Stab(20) should miss (half-open)")
	}
	_, v, ok = tr.Stab(30)
	if !ok || v != "b" {
		t.Errorf("Stab(30) = %q %t", v, ok)
	}
}

func TestInsertRejectsOverlapAndEmpty(t *testing.T) {
	tr := New[int]()
	if err := tr.Insert(10, 20, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(15, 25, 2); err == nil {
		t.Error("overlapping insert accepted")
	}
	if err := tr.Insert(5, 11, 3); err == nil {
		t.Error("overlapping insert accepted (left)")
	}
	if err := tr.Insert(7, 7, 4); err == nil {
		t.Error("empty interval accepted")
	}
	// Touching intervals are fine (half-open).
	if err := tr.Insert(20, 30, 5); err != nil {
		t.Errorf("touching interval rejected: %v", err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10; i++ {
		lo := uint64(i * 100)
		if err := tr.Insert(lo, lo+50, i); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.Delete(300) {
		t.Fatal("Delete(300) returned false")
	}
	if tr.Delete(300) {
		t.Error("second Delete(300) returned true")
	}
	if _, _, ok := tr.Stab(320); ok {
		t.Error("deleted interval still stabs")
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d, want 9", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants after delete: %v", err)
	}
}

func TestStabCacheInvalidatedByDelete(t *testing.T) {
	tr := New[int]()
	if err := tr.Insert(0, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tr.Stab(50); !ok {
		t.Fatal("stab miss")
	}
	tr.Delete(0)
	if _, _, ok := tr.Stab(50); ok {
		t.Error("stale cache served a deleted interval")
	}
}

func TestOverlapping(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 5; i++ {
		lo := uint64(i * 10)
		if err := tr.Insert(lo, lo+10, i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Overlapping(15, 35)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Overlapping(15,35) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Overlapping[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got := tr.Overlapping(100, 200); len(got) != 0 {
		t.Errorf("Overlapping outside = %v", got)
	}
}

func TestEachInOrder(t *testing.T) {
	tr := New[int]()
	los := []uint64{50, 10, 30, 70, 20}
	for i, lo := range los {
		if err := tr.Insert(lo, lo+5, i); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	tr.Each(func(iv Interval, _ int) { seen = append(seen, iv.Lo) })
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Errorf("Each not in order: %v", seen)
	}
	if len(seen) != len(los) {
		t.Errorf("Each visited %d, want %d", len(seen), len(los))
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Contains(10) || iv.Contains(20) || iv.Contains(9) {
		t.Error("Contains wrong at boundaries")
	}
	if iv.Len() != 10 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Overlaps(Interval{Lo: 19, Hi: 30}) {
		t.Error("Overlaps false negative")
	}
	if iv.Overlaps(Interval{Lo: 20, Hi: 30}) {
		t.Error("Overlaps false positive on touching")
	}
}

// TestRandomizedAgainstBruteForce cross-checks stab and overlap queries
// against a linear scan over many random insert/delete sequences, validating
// red-black invariants throughout.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[uint64]()
		live := map[uint64]Interval{} // keyed by Lo
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				lo := uint64(rng.Intn(1000)) * 10
				hi := lo + uint64(rng.Intn(9)+1)
				overlaps := false
				for _, iv := range live {
					if iv.Overlaps(Interval{Lo: lo, Hi: hi}) {
						overlaps = true
						break
					}
				}
				err := tr.Insert(lo, hi, lo)
				if overlaps && err == nil {
					t.Logf("seed %d: overlap accepted [%d,%d)", seed, lo, hi)
					return false
				}
				if !overlaps {
					if err != nil {
						t.Logf("seed %d: valid insert rejected: %v", seed, err)
						return false
					}
					live[lo] = Interval{Lo: lo, Hi: hi}
				}
			case 2: // delete
				for lo := range live {
					if !tr.Delete(lo) {
						t.Logf("seed %d: delete of live %d failed", seed, lo)
						return false
					}
					delete(live, lo)
					break
				}
			case 3: // stab
				p := uint64(rng.Intn(10010))
				_, got, ok := tr.Stab(p)
				var want uint64
				found := false
				for lo, iv := range live {
					if iv.Contains(p) {
						want, found = lo, true
						break
					}
				}
				if ok != found || (ok && got != want) {
					t.Logf("seed %d: stab(%d) = %v,%t want %v,%t", seed, p, got, ok, want, found)
					return false
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return tr.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStabNoCacheMatchesStab(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 50; i++ {
		lo := uint64(i * 20)
		if err := tr.Insert(lo, lo+10, i); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < 1000; p += 3 {
		_, a, okA := tr.Stab(p)
		_, b, okB := tr.StabNoCache(p)
		if okA != okB || a != b {
			t.Fatalf("Stab/StabNoCache diverge at %d: %v,%t vs %v,%t", p, a, okA, b, okB)
		}
	}
}

func TestStringRendering(t *testing.T) {
	tr := New[string]()
	if err := tr.Insert(1, 2, "x"); err != nil {
		t.Fatal(err)
	}
	if s := tr.String(); s == "" {
		t.Error("empty String()")
	}
}
