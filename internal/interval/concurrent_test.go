package interval

import (
	"sync"
	"testing"
)

// TestConcurrentStab hammers Stab from many goroutines — with interleaved
// inserts and deletes mutating the tree — to verify the atomic last-lookup
// cache under the race detector: concurrent readers refresh the cache while
// holding only the read lock, and Delete clears it before a node leaves the
// tree, so no stale or racy node is ever returned.
func TestConcurrentStab(t *testing.T) {
	const (
		mappings = 64
		span     = 1024
		readers  = 8
		stabs    = 20000
	)
	tr := New[int]()
	for i := 0; i < mappings; i++ {
		lo := uint64(i) * span
		if err := tr.Insert(lo, lo+span, i); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < stabs; i++ {
				// Mix cache-friendly sweeps with cache-hostile hops.
				p := uint64((i + r*7919) % (mappings * span))
				if i%2 == 0 {
					p = uint64(i % span) // repeated stabs into mapping 0
				}
				iv, v, ok := tr.Stab(p)
				if ok && !iv.Contains(p) {
					t.Errorf("stab(%#x) returned non-containing interval %v (val %d)", p, iv, v)
					return
				}
			}
		}()
	}
	// A writer churns the high half of the address space while the readers
	// run, forcing cache invalidations to race with cache refreshes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			lo := uint64(mappings+i%8) * span
			_ = tr.Insert(lo, lo+span, -1)
			tr.Delete(lo)
		}
	}()
	wg.Wait()

	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
