package interval

// CheckInvariants exposes the red-black/augmentation validator to tests.
func (t *Tree[V]) CheckInvariants() error { return t.checkInvariants() }
