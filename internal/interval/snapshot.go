package interval

import "fmt"

// Span is one interval/value pair captured by Snapshot.
type Span[V any] struct {
	Iv  Interval `json:"iv"`
	Val V        `json:"val"`
}

// Snapshot returns the tree's contents in ascending order of low endpoint.
// The result is deterministic for a given set of intervals, which keeps
// serialized checkpoints stable across insertion orders.
func (t *Tree[V]) Snapshot() []Span[V] {
	out := make([]Span[V], 0, t.Len())
	t.Each(func(iv Interval, val V) {
		out = append(out, Span[V]{Iv: iv, Val: val})
	})
	return out
}

// Clear removes every interval from the tree.
func (t *Tree[V]) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cache.Store(nil)
	t.root = nil
	t.size = 0
}

// RestoreSpans replaces the tree's contents with the given spans (checkpoint
// restore). Overlapping or empty spans are rejected with the tree cleared,
// since a partially restored tree is worse than an empty one.
func (t *Tree[V]) RestoreSpans(spans []Span[V]) error {
	t.Clear()
	for _, s := range spans {
		if err := t.Insert(s.Iv.Lo, s.Iv.Hi, s.Val); err != nil {
			t.Clear()
			return fmt.Errorf("interval: restore: %w", err)
		}
	}
	return nil
}
