// Package interval implements an augmented red-black interval tree.
//
// ARBALEST uses an interval tree to relate a corresponding variable's (CV)
// device address range back to the original variable's (OV) host range, and to
// detect data-mapping-related buffer overflows: an access whose address stabs
// no interval — or a different interval than the mapping it was issued
// against — escapes its CV (paper §IV-D). Lookup is O(log m) in the number of
// mapped variables m, and a last-lookup cache amortizes repeated stabs into
// the same mapping (paper §IV-C).
package interval

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Interval is a half-open range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Contains reports whether p lies in the interval.
func (iv Interval) Contains(p uint64) bool { return p >= iv.Lo && p < iv.Hi }

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool { return iv.Lo < other.Hi && other.Lo < iv.Hi }

// Len returns the length of the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%#x,%#x)", iv.Lo, iv.Hi) }

type color bool

const (
	red   color = false
	black color = true
)

type node[V any] struct {
	iv                  Interval
	val                 V
	maxHi               uint64 // max Hi in this subtree (the augmentation)
	c                   color
	left, right, parent *node[V]
}

// Tree is an interval tree mapping half-open ranges to values of type V.
// All methods are safe for concurrent use.
type Tree[V any] struct {
	mu   sync.RWMutex
	root *node[V]
	size int
	// cache holds the last successfully stabbed node, amortizing repeated
	// lookups into the same interval. It is an atomic pointer so concurrent
	// Stab calls — which hold only the read lock — can refresh it without a
	// write-lock upgrade or a data race. A node's iv and val never change
	// after insertion, so reading a cached node needs no further
	// synchronization; Delete clears the cache under the write lock before
	// the node leaves the tree.
	cache atomic.Pointer[node[V]]
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of intervals in the tree.
func (t *Tree[V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

func (n *node[V]) recomputeMax() {
	m := n.iv.Hi
	if n.left != nil && n.left.maxHi > m {
		m = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > m {
		m = n.right.maxHi
	}
	n.maxHi = m
}

func (t *Tree[V]) rotateLeft(x *node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	x.recomputeMax()
	y.recomputeMax()
}

func (t *Tree[V]) rotateRight(x *node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	x.recomputeMax()
	y.recomputeMax()
}

// Insert adds [lo, hi) with value val. It returns an error if the new
// interval is empty or overlaps an existing one: mapped variables never alias
// in the runtime, so an overlap indicates a bookkeeping bug in the caller.
func (t *Tree[V]) Insert(lo, hi uint64, val V) error {
	if lo >= hi {
		return fmt.Errorf("interval: empty interval [%#x,%#x)", lo, hi)
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	iv := Interval{Lo: lo, Hi: hi}
	var parent *node[V]
	cur := t.root
	for cur != nil {
		if iv.Overlaps(cur.iv) {
			return fmt.Errorf("interval: %v overlaps existing %v", iv, cur.iv)
		}
		parent = cur
		if lo < cur.iv.Lo {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	n := &node[V]{iv: iv, val: val, maxHi: hi, c: red, parent: parent}
	switch {
	case parent == nil:
		t.root = n
	case lo < parent.iv.Lo:
		parent.left = n
	default:
		parent.right = n
	}
	for p := parent; p != nil; p = p.parent {
		p.recomputeMax()
	}
	t.insertFixup(n)
	t.size++
	return nil
}

func (t *Tree[V]) insertFixup(z *node[V]) {
	for z.parent != nil && z.parent.c == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.c == red {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.c == red {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.c = black
			gp.c = red
			t.rotateLeft(gp)
		}
	}
	t.root.c = black
}

// Delete removes the interval whose low endpoint is lo. It reports whether an
// interval was removed.
func (t *Tree[V]) Delete(lo uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()

	z := t.root
	for z != nil && z.iv.Lo != lo {
		if lo < z.iv.Lo {
			z = z.left
		} else {
			z = z.right
		}
	}
	if z == nil {
		return false
	}
	t.cache.Store(nil)
	t.deleteNode(z)
	t.size--
	return true
}

func (t *Tree[V]) minimum(n *node[V]) *node[V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *Tree[V]) transplant(u, v *node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[V]) deleteNode(z *node[V]) {
	y := z
	yOrigColor := y.c
	var x *node[V]
	var xParent *node[V]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOrigColor = y.c
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.c = z.c
	}
	for p := xParent; p != nil; p = p.parent {
		p.recomputeMax()
	}
	if yOrigColor == black {
		t.deleteFixup(x, xParent)
	}
}

func (t *Tree[V]) deleteFixup(x *node[V], parent *node[V]) {
	for x != t.root && (x == nil || x.c == black) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.c == red {
				w.c = black
				parent.c = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if (w.left == nil || w.left.c == black) && (w.right == nil || w.right.c == black) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if w.right == nil || w.right.c == black {
					if w.left != nil {
						w.left.c = black
					}
					w.c = red
					t.rotateRight(w)
					w = parent.right
				}
				w.c = parent.c
				parent.c = black
				if w.right != nil {
					w.right.c = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w != nil && w.c == red {
				w.c = black
				parent.c = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if (w.left == nil || w.left.c == black) && (w.right == nil || w.right.c == black) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if w.left == nil || w.left.c == black {
					if w.right != nil {
						w.right.c = black
					}
					w.c = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.c = parent.c
				parent.c = black
				if w.left != nil {
					w.left.c = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.c = black
	}
}

// Stab returns the interval containing p and its value. The second result
// reports whether such an interval exists. A one-entry cache makes repeated
// stabs into the same interval O(1). Concurrent stabs share the cache
// without serializing: it is refreshed with an atomic store while still
// holding the read lock, which excludes Delete (the only operation that
// could invalidate the node being published).
func (t *Tree[V]) Stab(p uint64) (Interval, V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c := t.cache.Load(); c != nil && c.iv.Contains(p) {
		return c.iv, c.val, true
	}
	n := t.stabNode(p)
	if n == nil {
		var zero V
		return Interval{}, zero, false
	}
	t.cache.Store(n)
	return n.iv, n.val, true
}

// StabNoCache is Stab without cache maintenance; used by the ablation
// benchmark that quantifies the cache's effect.
func (t *Tree[V]) StabNoCache(p uint64) (Interval, V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.stabNode(p)
	if n == nil {
		var zero V
		return Interval{}, zero, false
	}
	return n.iv, n.val, true
}

func (t *Tree[V]) stabNode(p uint64) *node[V] {
	n := t.root
	for n != nil {
		if n.iv.Contains(p) {
			return n
		}
		if n.left != nil && n.left.maxHi > p {
			n = n.left
		} else if p >= n.iv.Lo {
			n = n.right
		} else {
			return nil
		}
	}
	return nil
}

// Overlapping returns the values of every interval overlapping [lo, hi), in
// ascending order of low endpoint.
func (t *Tree[V]) Overlapping(lo, hi uint64) []V {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []V
	q := Interval{Lo: lo, Hi: hi}
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil || n.maxHi <= lo {
			return
		}
		walk(n.left)
		if n.iv.Overlaps(q) {
			out = append(out, n.val)
		}
		if n.iv.Lo < hi {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// Each calls fn for every interval in ascending order of low endpoint.
func (t *Tree[V]) Each(fn func(iv Interval, val V)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil {
			return
		}
		walk(n.left)
		fn(n.iv, n.val)
		walk(n.right)
	}
	walk(t.root)
}

// String renders the tree contents for debugging.
func (t *Tree[V]) String() string {
	var sb strings.Builder
	sb.WriteString("interval.Tree{")
	first := true
	t.Each(func(iv Interval, val V) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%v:%v", iv, val)
	})
	sb.WriteString("}")
	return sb.String()
}

// checkInvariants validates red-black and augmentation invariants; exported
// for tests via export_test.go.
func (t *Tree[V]) checkInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return nil
	}
	if t.root.c != black {
		return fmt.Errorf("root is red")
	}
	_, err := checkNode(t.root)
	return err
}

func checkNode[V any](n *node[V]) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if n.c == red {
		if (n.left != nil && n.left.c == red) || (n.right != nil && n.right.c == red) {
			return 0, fmt.Errorf("red node %v has red child", n.iv)
		}
	}
	want := n.iv.Hi
	if n.left != nil {
		if n.left.parent != n {
			return 0, fmt.Errorf("bad parent link at %v", n.left.iv)
		}
		if n.left.iv.Lo > n.iv.Lo {
			return 0, fmt.Errorf("BST order violated at %v", n.iv)
		}
		if n.left.maxHi > want {
			want = n.left.maxHi
		}
	}
	if n.right != nil {
		if n.right.parent != n {
			return 0, fmt.Errorf("bad parent link at %v", n.right.iv)
		}
		if n.right.iv.Lo < n.iv.Lo {
			return 0, fmt.Errorf("BST order violated at %v", n.iv)
		}
		if n.right.maxHi > want {
			want = n.right.maxHi
		}
	}
	if n.maxHi != want {
		return 0, fmt.Errorf("maxHi stale at %v: have %#x want %#x", n.iv, n.maxHi, want)
	}
	lh, err := checkNode(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("black height mismatch at %v: %d vs %d", n.iv, lh, rh)
	}
	if n.c == black {
		lh++
	}
	return lh, nil
}
